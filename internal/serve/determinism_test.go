package serve

import (
	"bufio"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/campaign/determtest"
)

// testSource loads the repo's miniature UoA program; serve tests
// measure the same program the assembler end-to-end tests run.
func testSource(t testing.TB) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "asm", "testdata", "uoa.s"))
	if err != nil {
		t.Fatalf("read test program: %v", err)
	}
	return string(b)
}

// testSpec builds a job spec over the test program. Attribution is on
// so the rendered report exercises the per-component split too.
func testSpec(t testing.TB, id string, runs, workers int, seed uint64) Spec {
	return Spec{
		ID: id, Source: testSource(t), Runs: runs, Seed: seed,
		Workers: workers, Attribution: true,
	}
}

// outcomeOutput lifts a runner Outcome onto the shared byte-identity
// surface.
func outcomeOutput(o *Outcome) determtest.Output {
	cycles := make([]float64, len(o.Points))
	for i, pt := range o.Points {
		cycles[i] = float64(pt.Cycles)
	}
	return determtest.Output{
		Cycles:    cycles,
		Results:   o.Points,
		Stream:    o.Times,
		Telemetry: o.Telemetry,
		Report:    []byte(FormatReport(o)),
	}
}

// refOutput runs the campaign directly through the shared runner (the
// CLI path) — the reference every service-side surface must match byte
// for byte.
func refOutput(t testing.TB, spec Spec) determtest.Output {
	t.Helper()
	out, err := Run(spec, nil, Hooks{})
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	return outcomeOutput(out)
}

// jobOutput fetches a finished job's artifacts over the API and lifts
// them onto the same surface.
func jobOutput(t testing.TB, cl *Client, id string) determtest.Output {
	t.Helper()
	pts, err := cl.Points(id)
	if err != nil {
		t.Fatalf("fetch points %s: %v", id, err)
	}
	report, err := cl.Report(id)
	if err != nil {
		t.Fatalf("fetch report %s: %v", id, err)
	}
	telem, err := cl.Telemetry(id)
	if err != nil {
		t.Fatalf("fetch telemetry %s: %v", id, err)
	}
	cycles := make([]float64, len(pts))
	for i, pt := range pts {
		cycles[i] = float64(pt.Cycles)
	}
	return determtest.Output{
		Cycles:    cycles,
		Results:   pts,
		Stream:    cycles,
		Telemetry: telem,
		Report:    report,
	}
}

// startServer builds a Server over dir and mounts its API on an
// httptest server.
func startServer(t testing.TB, dir string, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	cfg.DataDir = dir
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, &Client{Base: ts.URL}
}

// waitTerminal polls a job to a terminal state, failing on timeout.
func waitTerminal(t testing.TB, cl *Client, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := cl.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobStatus{}
}

// waitProgress polls until the job has merged at least min runs (and
// is not yet terminal), failing if it finishes first — the caller is
// about to interrupt it mid-flight and needs it to still be in flight.
func waitProgress(t testing.TB, cl *Client, id string, min int) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := cl.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s before the test could interrupt it mid-flight (done=%d)",
				id, st.State, st.Done)
		}
		if st.State == StateRunning && st.Done >= min {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %d merged runs", id, min)
	return JobStatus{}
}

// TestCampaignServeDeterminism is the core service-level determinism
// suite: a job submitted over the API produces points, MBPTA stream,
// telemetry JSONL and rendered report byte-identical to the dsrrun CLI
// path, at every worker count.
func TestCampaignServeDeterminism(t *testing.T) {
	const runs = 600
	ref := refOutput(t, testSpec(t, "", runs, 1, 42))

	s, ts, cl := startServer(t, t.TempDir(), Config{Executors: 2})
	defer ts.Close()
	defer s.Stop()

	for _, workers := range []int{1, 8} {
		spec := testSpec(t, "", runs, workers, 42)
		st, err := cl.Submit(spec)
		if err != nil {
			t.Fatalf("submit workers=%d: %v", workers, err)
		}
		fin := waitTerminal(t, cl, st.ID)
		if fin.State != StateDone {
			t.Fatalf("workers=%d: job ended %s: %s", workers, fin.State, fin.Error)
		}
		if fin.Done != runs {
			t.Fatalf("workers=%d: done=%d, want %d", workers, fin.Done, runs)
		}
		determtest.Check(t, "service workers="+string(rune('0'+workers))+" vs CLI",
			ref, jobOutput(t, cl, st.ID))
	}
}

// TestCampaignServeIdempotentSubmit: resubmitting an identical spec
// under the same id returns the existing job; a different spec under
// the same id is a conflict.
func TestCampaignServeIdempotentSubmit(t *testing.T) {
	s, ts, cl := startServer(t, t.TempDir(), Config{Executors: 1})
	defer ts.Close()
	defer s.Stop()

	spec := testSpec(t, "same", 600, 4, 42)
	st, err := cl.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID != "same" {
		t.Fatalf("id = %q", st.ID)
	}
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	other := spec
	other.Seed = 43
	_, err = cl.Submit(other)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("conflicting resubmit returned %v, want 409", err)
	}
	if st := waitTerminal(t, cl, "same"); st.State != StateDone {
		t.Fatalf("job ended %s", st.State)
	}
}

// TestCampaignServeConcurrentJobs runs 8 jobs concurrently (different
// seeds and worker counts, so results interleave arbitrarily in the
// executor pool) and checks each against its own CLI reference.
func TestCampaignServeConcurrentJobs(t *testing.T) {
	const runs = 400
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	refs := make([]determtest.Output, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			refs[i] = refOutput(t, testSpec(t, "", runs, 1, seed))
		}(i, seed)
	}
	wg.Wait()

	s, ts, cl := startServer(t, t.TempDir(), Config{Executors: 4, QueueCap: 16})
	defer ts.Close()
	defer s.Stop()

	ids := make([]string, len(seeds))
	for i, seed := range seeds {
		st, err := cl.Submit(testSpec(t, "", runs, 1+i%4, seed))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		if st := waitTerminal(t, cl, id); st.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		determtest.Check(t, "concurrent job "+id, refs[i], jobOutput(t, cl, id))
	}
}

// TestCampaignServeCancelResubmit: cancelling a running job mid-flight
// drains it promptly to the cancelled state; resubmitting the same
// id re-enqueues it (resuming from whatever checkpoint the cancelled
// attempt left) and finishes byte-identical to the CLI path.
func TestCampaignServeCancelResubmit(t *testing.T) {
	const runs = 20000
	spec := testSpec(t, "cancel-me", runs, 2, 42)
	ref := refOutput(t, testSpec(t, "", runs, 1, 42))

	s, ts, cl := startServer(t, t.TempDir(), Config{Executors: 1, CheckpointEvery: 200})
	defer ts.Close()
	defer s.Stop()

	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitProgress(t, cl, "cancel-me", 100)
	if _, err := cl.Cancel("cancel-me"); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st := waitTerminal(t, cl, "cancel-me")
	if st.State != StateCancelled {
		t.Fatalf("cancelled job ended %s", st.State)
	}
	if st.Done >= runs {
		t.Fatalf("cancelled job merged all %d runs", st.Done)
	}
	// Cancel is idempotent on a terminal job.
	if st, err := cl.Cancel("cancel-me"); err != nil || st.State != StateCancelled {
		t.Fatalf("second cancel: %v %s", err, st.State)
	}

	// Resubmit: same id, same spec — accepted and re-run to completion.
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	fin := waitTerminal(t, cl, "cancel-me")
	if fin.State != StateDone {
		t.Fatalf("resubmitted job ended %s: %s", fin.State, fin.Error)
	}
	determtest.Check(t, "cancel+resubmit vs CLI", ref, jobOutput(t, cl, "cancel-me"))
}

// TestCampaignServeCheckpointRestore is the crash test: kill the
// daemon mid-campaign (no graceful checkpoint), start a fresh daemon
// over the same data dir, and require the resumed job's every surface
// to be byte-identical to an uninterrupted CLI run.
func TestCampaignServeCheckpointRestore(t *testing.T) {
	const runs = 20000
	spec := testSpec(t, "crashy", runs, 2, 42)
	ref := refOutput(t, testSpec(t, "", runs, 1, 42))
	dir := t.TempDir()

	s, ts, cl := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 200})
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitProgress(t, cl, "crashy", 500)
	s.Kill()
	ts.Close()

	if _, err := os.Stat(filepath.Join(dir, "jobs", "crashy", checkpointFile)); err != nil {
		t.Fatalf("no checkpoint on disk after kill: %v", err)
	}

	s2, ts2, cl2 := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 200})
	defer ts2.Close()
	defer s2.Stop()
	fin := waitTerminal(t, cl2, "crashy")
	if fin.State != StateDone {
		t.Fatalf("recovered job ended %s: %s", fin.State, fin.Error)
	}
	if fin.Done != runs {
		t.Fatalf("recovered job done=%d, want %d", fin.Done, runs)
	}
	determtest.Check(t, "kill+restore vs CLI", ref, jobOutput(t, cl2, "crashy"))
}

// TestCampaignServeGracefulStopResume: a graceful Stop suspends the
// in-flight job with a final checkpoint; the next daemon finishes it
// byte-identically.
func TestCampaignServeGracefulStopResume(t *testing.T) {
	const runs = 20000
	spec := testSpec(t, "suspend", runs, 2, 42)
	ref := refOutput(t, testSpec(t, "", runs, 1, 42))
	dir := t.TempDir()

	s, ts, cl := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 200})
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := waitProgress(t, cl, "suspend", 500)
	s.Stop()
	ts.Close()

	// The final checkpoint must cover everything merged at suspension:
	// no progress may be lost on a graceful stop.
	cp, _ := LoadCheckpoint(filepath.Join(dir, "jobs", "suspend"), "suspend", spec.Hash())
	if cp == nil {
		t.Fatal("no checkpoint after graceful stop")
	}
	if cp.Cursor < st.Done {
		t.Fatalf("final checkpoint cursor %d < %d merged before stop", cp.Cursor, st.Done)
	}

	s2, ts2, cl2 := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 200})
	defer ts2.Close()
	defer s2.Stop()
	fin := waitTerminal(t, cl2, "suspend")
	if fin.State != StateDone {
		t.Fatalf("resumed job ended %s: %s", fin.State, fin.Error)
	}
	determtest.Check(t, "stop+resume vs CLI", ref, jobOutput(t, cl2, "suspend"))
}

// TestCampaignServeCorruptCheckpointRestart: a crash that damages the
// newest checkpoint falls back to the previous rotation; damaging both
// restarts the job from scratch. Either way the final outputs are
// byte-identical to the CLI path — corruption costs progress, never
// correctness.
func TestCampaignServeCorruptCheckpointRestart(t *testing.T) {
	const runs = 20000
	spec := testSpec(t, "bitrot", runs, 2, 42)
	ref := refOutput(t, testSpec(t, "", runs, 1, 42))
	dir := t.TempDir()

	s, ts, cl := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 100})
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Two checkpoint generations must exist before the kill so the
	// fallback has somewhere to land.
	waitProgress(t, cl, "bitrot", 500)
	s.Kill()
	ts.Close()

	jobDir := filepath.Join(dir, "jobs", "bitrot")
	cur := filepath.Join(jobDir, checkpointFile)
	b, err := os.ReadFile(cur)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	b[len(b)/2] ^= 0x01 // bit-flip mid-payload
	if err := os.WriteFile(cur, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if cp, src := LoadCheckpoint(jobDir, "bitrot", spec.Hash()); cp == nil || src != checkpointPrev {
		t.Fatalf("corrupt current did not fall back to prev (got %q)", src)
	}

	s2, ts2, cl2 := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 100})
	defer ts2.Close()
	defer s2.Stop()
	fin := waitTerminal(t, cl2, "bitrot")
	if fin.State != StateDone {
		t.Fatalf("recovered job ended %s: %s", fin.State, fin.Error)
	}
	determtest.Check(t, "corrupt-checkpoint restart vs CLI", ref, jobOutput(t, cl2, "bitrot"))
}

// TestCampaignServeScratchRestart: when every checkpoint generation is
// destroyed, recovery restarts the job from run zero and still matches
// the CLI byte for byte.
func TestCampaignServeScratchRestart(t *testing.T) {
	const runs = 2000
	spec := testSpec(t, "scratch", runs, 2, 42)
	ref := refOutput(t, testSpec(t, "", runs, 1, 42))
	dir := t.TempDir()

	s, ts, cl := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 100})
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitProgress(t, cl, "scratch", 300)
	s.Kill()
	ts.Close()

	jobDir := filepath.Join(dir, "jobs", "scratch")
	for _, name := range []string{checkpointFile, checkpointPrev} {
		if err := os.WriteFile(filepath.Join(jobDir, name), []byte("xx"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, ts2, cl2 := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 100})
	defer ts2.Close()
	defer s2.Stop()
	fin := waitTerminal(t, cl2, "scratch")
	if fin.State != StateDone {
		t.Fatalf("recovered job ended %s: %s", fin.State, fin.Error)
	}
	determtest.Check(t, "scratch restart vs CLI", ref, jobOutput(t, cl2, "scratch"))
}

// TestServeQueueSaturation: submissions beyond the queue bound get
// 429 + Retry-After while the running job keeps merging and its SSE
// stream keeps flowing — backpressure never blocks the execution path
// or in-flight consumers.
func TestServeQueueSaturation(t *testing.T) {
	s, ts, cl := startServer(t, t.TempDir(), Config{Executors: 1, QueueCap: 2, CheckpointEvery: 1000})
	defer ts.Close()
	defer s.Stop()

	// Occupy the single executor with a long job, then fill the queue.
	long := testSpec(t, "long", 40000, 2, 42)
	if _, err := cl.Submit(long); err != nil {
		t.Fatalf("submit long: %v", err)
	}
	waitProgress(t, cl, "long", 1)
	// Seeds 1 and 2 at 400 runs are known to pass the i.i.d. gate (the
	// concurrent-jobs suite runs them); this test is about queue
	// mechanics, not analysis statistics.
	for i := 0; i < 2; i++ {
		if _, err := cl.Submit(testSpec(t, "", 400, 1, uint64(1+i))); err != nil {
			t.Fatalf("fill queue %d: %v", i, err)
		}
	}

	// Saturated: the next submission is rejected with backpressure.
	_, err := cl.Submit(testSpec(t, "", 400, 1, 99))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit returned %v, want 429", err)
	}
	if se.RetryAfter < 1 {
		t.Fatalf("429 without usable Retry-After (%d)", se.RetryAfter)
	}

	// The running job is still merging under saturation.
	before, err := cl.Status("long")
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, cl, "long", before.Done+100)

	// And its SSE stream still serves snapshot + deltas.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs/long/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("SSE connect under saturation: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var sawSnapshot, sawDelta bool
	for sc.Scan() && !(sawSnapshot && sawDelta) {
		line := sc.Text()
		if strings.HasPrefix(line, "event: snapshot") {
			sawSnapshot = true
		}
		if strings.HasPrefix(line, "event: delta") {
			sawDelta = true
		}
	}
	if !sawSnapshot || !sawDelta {
		t.Fatalf("SSE under saturation: snapshot=%v delta=%v", sawSnapshot, sawDelta)
	}

	// Drain: cancel the long job; the queued jobs then run to done.
	if _, err := cl.Cancel("long"); err != nil {
		t.Fatal(err)
	}
	sts, err := listJobs(cl)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.ID == "long" {
			continue
		}
		if fin := waitTerminal(t, cl, st.ID); fin.State != StateDone {
			t.Fatalf("queued job %s ended %s: %s", st.ID, fin.State, fin.Error)
		}
	}
}

// listJobs fetches GET /jobs.
func listJobs(cl *Client) ([]JobStatus, error) {
	var sts []JobStatus
	err := cl.do(http.MethodGet, "/jobs", nil, &sts)
	return sts, err
}
