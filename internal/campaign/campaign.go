package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dsr/internal/telemetry"
)

// ErrInterrupted is returned by Execute when the campaign stopped
// because Config.Interrupt fired before every run merged. It is a
// cooperative stop, not a failure: every run merged before the
// interruption is valid (and, being a pure function of its canonical
// index, byte-identical to what an uninterrupted campaign would have
// merged), so callers may checkpoint the merged prefix and later
// resume from it with Config.First.
var ErrInterrupted = errors.New("campaign: interrupted")

// Config dimensions an engine execution.
type Config struct {
	// Runs is the number of independent runs to execute (canonical
	// indices 0..Runs-1).
	Runs int
	// First is the resume cursor: the engine executes and merges only
	// indices First..Runs-1, assuming the caller already holds the
	// merged results of 0..First-1 (from a checkpoint). Because every
	// run is a pure function of its canonical index, a resumed campaign
	// merges exactly what the original would have merged from that
	// point on. Zero (the default) runs the whole campaign.
	First int
	// Interrupt, when non-nil, requests a cooperative stop when it
	// becomes receivable (typically by closing it): the engine stops
	// handing out new runs, drains in-flight ones, merges any contiguous
	// completed prefix, and returns ErrInterrupted. Run and merge errors
	// take precedence over the interruption.
	Interrupt <-chan struct{}
	// Workers is the worker-pool size: 0 (or negative) selects
	// runtime.NumCPU(), 1 selects the legacy strictly sequential path
	// (no goroutines, runs executed inline on the caller's goroutine).
	// The engine's determinism invariant guarantees the merged output is
	// byte-identical for every worker count.
	Workers int
	// Tracer, when non-nil, records a host wall-time span timeline of
	// the execution: a campaign span plus merge/merge.wait spans on the
	// campaign track (worker -1), and worker/setup/claim/run spans per
	// worker. Run functions can nest phase spans (boot, reloc, execute)
	// under their run span via Tracer.Worker(w). Tracing never affects
	// campaign results — spans live on the host clock, outside the
	// deterministic telemetry dump.
	Tracer *telemetry.Tracer
}

// WorkerCount resolves the effective pool size: Workers, defaulted to
// runtime.NumCPU() and clamped to [1, remaining runs].
func (c Config) WorkerCount() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if rem := c.Runs - c.First; rem > 0 && w > rem {
		w = rem
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunFunc executes one run by canonical index on worker-private state
// and returns its result. It is called from a single goroutine per
// worker, but different workers call their own RunFunc concurrently:
// implementations must not share mutable state across workers.
type RunFunc[R any] func(i int) (R, error)

// MergeFunc folds one run's result into the campaign output. The
// engine calls it exactly once per index, in canonical order 0, 1, 2,
// ..., always from the caller's goroutine — so merge code may touch
// non-thread-safe campaign state (telemetry registries, event logs,
// result slices) without locking. Results stream into the merge as
// soon as their canonical predecessor has merged; the engine does not
// wait for the whole campaign before merging the first run.
type MergeFunc[R any] func(i int, r R) error

// Execute shards cfg.Runs independent runs across cfg.Workers workers
// and merges the results in canonical order.
//
// newWorker is called once per worker (with the worker id) to build
// worker-private state — typically a fresh platform instance plus a DSR
// runtime — and returns the worker's RunFunc. Run indices are assigned
// dynamically (a shared counter), which keeps all workers busy even
// when run times vary; determinism is unaffected because every run is a
// pure function of its canonical index.
//
// On error — from newWorker, a run, or the merge — the engine stops
// handing out new runs, drains in-flight ones, and returns the error
// belonging to the smallest canonical index (worker construction
// errors, which have no index, take precedence). The merge is never
// invoked for indices at or beyond a failed run.
func Execute[R any](cfg Config, newWorker func(w int) (RunFunc[R], error), merge MergeFunc[R]) error {
	n := cfg.Runs
	if n < 0 {
		return fmt.Errorf("campaign: negative run count %d", n)
	}
	first := cfg.First
	if first < 0 {
		return fmt.Errorf("campaign: negative resume cursor %d", first)
	}
	if first > n {
		return fmt.Errorf("campaign: resume cursor %d beyond run count %d", first, n)
	}
	if n == 0 || first == n {
		return nil
	}
	ct := cfg.Tracer.Worker(-1)
	campaign := ct.Begin(telemetry.SpanCampaign, -1)
	defer ct.End(campaign)
	if cfg.WorkerCount() == 1 {
		return executeSequential(first, n, cfg.Interrupt, cfg.Tracer, newWorker, merge)
	}
	return executeParallel(first, n, cfg.WorkerCount(), cfg.Interrupt, cfg.Tracer, newWorker, merge)
}

// interrupted reports whether the interrupt channel has fired; a nil
// channel never fires.
func interrupted(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// executeSequential is the legacy path (Workers=1): one worker, runs
// executed inline in canonical order on the caller's goroutine. It is
// the reference the determinism tests compare the parallel path
// against.
func executeSequential[R any](first, n int, interrupt <-chan struct{}, tr *telemetry.Tracer, newWorker func(w int) (RunFunc[R], error), merge MergeFunc[R]) error {
	wt, ct := tr.Worker(0), tr.Worker(-1)
	ws := wt.Begin(telemetry.SpanWorker, -1)
	defer wt.End(ws)
	setup := wt.Begin(telemetry.SpanSetup, -1)
	run, err := newWorker(0)
	wt.End(setup)
	if err != nil {
		return err
	}
	for i := first; i < n; i++ {
		if interrupted(interrupt) {
			return ErrInterrupted
		}
		rs := wt.Begin(telemetry.SpanRun, i)
		r, err := run(i)
		wt.End(rs)
		if err != nil {
			return err
		}
		if merge != nil {
			ms := ct.Begin(telemetry.SpanMerge, i)
			err := merge(i, r)
			ct.End(ms)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// indexedError is an error tagged with the canonical index it occurred
// at, so that concurrent failures resolve deterministically to the one
// the sequential path would have hit first.
type indexedError struct {
	index int // run index; -1 for worker-construction errors
	err   error
}

// executeParallel is the worker-pool path. Results land in a pre-sized
// slice guarded by a mutex + condvar; the caller's goroutine walks the
// slice in canonical order, handing each completed result to merge as
// soon as it is available.
func executeParallel[R any](first, n, workers int, interrupt <-chan struct{}, tr *telemetry.Tracer, newWorker func(w int) (RunFunc[R], error), merge MergeFunc[R]) error {
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		results = make([]R, n)
		done    = make([]bool, n)
		next    = first // next unassigned run index
		stopped bool    // no further runs may be claimed
		stopReq bool    // Interrupt fired
		errs    []indexedError
		wg      sync.WaitGroup
	)
	fail := func(index int, err error) {
		// called with mu held
		errs = append(errs, indexedError{index: index, err: err})
		stopped = true
		cond.Broadcast()
	}
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		// An interrupt only counts while unclaimed work remains: once every
		// run has been handed out, the campaign completes normally — there
		// is nothing left to cut short.
		if !stopped && next < n && interrupted(interrupt) {
			stopped, stopReq = true, true
			cond.Broadcast()
		}
		if stopped || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wt := tr.Worker(w)
			ws := wt.Begin(telemetry.SpanWorker, -1)
			defer wt.End(ws)
			setup := wt.Begin(telemetry.SpanSetup, -1)
			run, err := newWorker(w)
			wt.End(setup)
			if err != nil {
				mu.Lock()
				fail(-1, err)
				mu.Unlock()
				return
			}
			for {
				cl := wt.Begin(telemetry.SpanClaim, -1)
				i, ok := claim()
				wt.End(cl)
				if !ok {
					return
				}
				rs := wt.Begin(telemetry.SpanRun, i)
				r, err := run(i)
				wt.End(rs)
				mu.Lock()
				if err != nil {
					fail(i, err)
					mu.Unlock()
					return
				}
				results[i], done[i] = r, true
				cond.Broadcast()
				mu.Unlock()
			}
		}(w)
	}

	// Canonical-order streaming merge on the caller's goroutine.
	ct := tr.Worker(-1)
	var mergeErr error
	mu.Lock()
	for i := first; i < n; i++ {
		mw := ct.Begin(telemetry.SpanMergeWait, i)
		for !done[i] && !stopped {
			cond.Wait()
		}
		ct.End(mw)
		if !done[i] {
			break // stopped before run i completed
		}
		r := results[i]
		mu.Unlock()
		if merge != nil {
			ms := ct.Begin(telemetry.SpanMerge, i)
			if err := merge(i, r); err != nil {
				mergeErr = err
			}
			ct.End(ms)
		}
		mu.Lock()
		if mergeErr != nil {
			stopped = true
			break
		}
	}
	stopped = true
	mu.Unlock()
	wg.Wait()

	if mergeErr != nil {
		return mergeErr
	}
	if err := firstError(errs); err != nil {
		return err
	}
	if stopReq {
		return ErrInterrupted
	}
	return nil
}

// firstError resolves concurrent failures deterministically: worker
// construction errors first, then the error with the smallest run
// index — the one the sequential path would have reported.
func firstError(errs []indexedError) error {
	var best *indexedError
	for i := range errs {
		e := &errs[i]
		if best == nil {
			best = e
			continue
		}
		switch {
		case e.index == -1 && best.index != -1:
			best = e
		case e.index != -1 && best.index != -1 && e.index < best.index:
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.err
}
