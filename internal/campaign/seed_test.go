package campaign

import "testing"

// TestScheduleGoldenValues pins the schedule across Go versions and
// platforms: the schedule is pure uint64 arithmetic, so these values
// must never change — a campaign replayed years later from a recorded
// base seed must reproduce the same per-run seeds. The base-0 state is
// cross-checked against the published splitmix64 test vector (the
// first output of a splitmix64 generator seeded with 0).
func TestScheduleGoldenValues(t *testing.T) {
	cases := []struct {
		base  uint64
		state uint64
		seeds []uint64 // Seed(0), Seed(1), ...
	}{
		{0, 0xe220a8397b1dcdaf, []uint64{0xb382a305f4414f5e, 0x631a9154fbabf717, 0xa80aba8c86640906, 0xc9b5ae106698f0bb}},
		{1, 0x910a2dec89025cc1, []uint64{0xf18d6ce93d6cf1ee, 0x0b95f66d327e8d78, 0xc7061b1b93322ba9, 0x3817edddf9257651}},
		{1001, 0x533e00f7f3c606d4, []uint64{0x1f87be6fe3c07cc5, 0x1dd470590e3471bc, 0xf0743ab70a590f62, 0x7b4712710ededb06}},
		{0xDEADBEEF, 0x4adfb90f68c9eb9b, []uint64{0x0c8c677a4f78d499, 0x9b03bfcfe1dcc4f5, 0xac75f0a487ff924c, 0x8c639f197393a2da}},
	}
	for _, c := range cases {
		s := NewSchedule(c.base)
		if s.Base() != c.state {
			t.Errorf("NewSchedule(%#x).Base() = %#016x, want %#016x", c.base, s.Base(), c.state)
		}
		for i, want := range c.seeds {
			if got := s.Seed(i); got != want {
				t.Errorf("NewSchedule(%#x).Seed(%d) = %#016x, want %#016x", c.base, i, got, want)
			}
		}
	}
	// Split golden value: the bus-contention stream of the default
	// campaign (base 1, stream 1).
	child := NewSchedule(1).Split(1)
	if got, want := child.Base(), uint64(0x05fe9ef5ebb56d41); got != want {
		t.Errorf("NewSchedule(1).Split(1).Base() = %#016x, want %#016x", got, want)
	}
	if got, want := child.Seed(0), uint64(0xc69c79df371fd393); got != want {
		t.Errorf("NewSchedule(1).Split(1).Seed(0) = %#016x, want %#016x", got, want)
	}
}

// TestScheduleNoCollisions checks injectivity over a full-scale
// campaign's worth of derived seeds: 1e6 runs from one base, plus the
// same run range from a sibling Split stream, with zero collisions.
func TestScheduleNoCollisions(t *testing.T) {
	const n = 1_000_000
	s := NewSchedule(1)
	seen := make(map[uint64]int, 2*n)
	for i := 0; i < n; i++ {
		seed := s.Seed(i)
		if j, dup := seen[seed]; dup {
			t.Fatalf("Seed(%d) == Seed(%d) == %#x", i, j, seed)
		}
		seen[seed] = i
	}
	child := s.Split(1)
	for i := 0; i < n; i++ {
		seed := child.Seed(i)
		if j, dup := seen[seed]; dup {
			t.Fatalf("Split(1).Seed(%d) collides with earlier seed %d (%#x)", i, j, seed)
		}
		seen[seed] = n + i
	}
}

// TestScheduleOrderIndependence checks the property dynamic shard
// assignment rests on: Seed(i) does not depend on the order seeds are
// drawn in, and the Schedule value is not mutated by use.
func TestScheduleOrderIndependence(t *testing.T) {
	s := NewSchedule(42)
	forward := make([]uint64, 100)
	for i := range forward {
		forward[i] = s.Seed(i)
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := s.Seed(i); got != forward[i] {
			t.Fatalf("Seed(%d) changed between draws: %#x then %#x", i, forward[i], got)
		}
	}
	if s != NewSchedule(42) {
		t.Fatal("Schedule mutated by Seed calls")
	}
}

// TestScheduleAdjacentBasesDiffer checks whitening of the base: the
// measurement protocol draws base seeds 1, 2, 3, ... and their
// schedules must not overlap or correlate trivially.
func TestScheduleAdjacentBasesDiffer(t *testing.T) {
	const n = 1000
	a, b := NewSchedule(1), NewSchedule(2)
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		seen[a.Seed(i)] = true
	}
	for i := 0; i < n; i++ {
		if seen[b.Seed(i)] {
			t.Fatalf("base 1 and base 2 schedules share seed at run %d", i)
		}
	}
}

// TestSplitStreamsIndependent checks that distinct Split streams, and
// children versus their parent, do not share seeds over a campaign.
func TestSplitStreamsIndependent(t *testing.T) {
	const n = 1000
	parent := NewSchedule(7)
	c1, c2 := parent.Split(1), parent.Split(2)
	if c1 == c2 {
		t.Fatal("Split(1) == Split(2)")
	}
	if c1 == parent || c2 == parent {
		t.Fatal("Split returned the parent schedule")
	}
	seen := make(map[uint64]string, 3*n)
	draw := func(name string, s Schedule) {
		for i := 0; i < n; i++ {
			seed := s.Seed(i)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("%s.Seed(%d) = %#x already drawn by %s", name, i, seed, prev)
			}
			seen[seed] = name
		}
	}
	draw("parent", parent)
	draw("split1", c1)
	draw("split2", c2)
}

// TestMix64Bijection spot-checks invertibility indirectly: distinct
// inputs in a dense range give distinct outputs (a true bijection test
// is the algebraic argument in the package docs; this catches typos in
// the constants).
func TestMix64Bijection(t *testing.T) {
	const n = 1 << 16
	seen := make(map[uint64]uint64, n)
	for z := uint64(0); z < n; z++ {
		out := mix64(z)
		if prev, dup := seen[out]; dup {
			t.Fatalf("mix64(%d) == mix64(%d)", z, prev)
		}
		seen[out] = z
	}
}
