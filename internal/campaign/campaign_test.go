package campaign

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsr/internal/telemetry"
)

// TestExecuteMergesInCanonicalOrder checks the core invariant at the
// engine level: whatever order runs complete in, merge sees indices
// 0, 1, 2, ... exactly once each.
func TestExecuteMergesInCanonicalOrder(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 3, 8, n} {
		var order []int
		err := Execute(Config{Runs: n, Workers: workers},
			func(w int) (RunFunc[int], error) {
				return func(i int) (int, error) {
					// Perturb completion order: later indices finish sooner.
					if i%7 == 0 {
						time.Sleep(time.Duration(i%3) * time.Microsecond)
					}
					return i * i, nil
				}, nil
			},
			func(i, r int) error {
				if r != i*i {
					t.Errorf("workers=%d: merge(%d) got %d, want %d", workers, i, r, i*i)
				}
				order = append(order, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("workers=%d: merge order %v", workers, order)
		}
	}
}

// TestExecuteWorkerPrivateState checks each worker gets its own state
// from its own newWorker call, and no worker id is constructed twice.
func TestExecuteWorkerPrivateState(t *testing.T) {
	const n, workers = 64, 4
	var mu sync.Mutex
	built := map[int]int{}
	err := Execute(Config{Runs: n, Workers: workers},
		func(w int) (RunFunc[int], error) {
			mu.Lock()
			built[w]++
			mu.Unlock()
			private := 0 // worker-local accumulator: data race here would trip -race
			return func(i int) (int, error) {
				private++
				return private, nil
			}, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != workers {
		t.Errorf("built %d workers, want %d", len(built), workers)
	}
	for w, c := range built {
		if c != 1 {
			t.Errorf("worker %d constructed %d times", w, c)
		}
	}
}

// TestExecuteRunError checks a failing run aborts the campaign with
// that error and never merges the failed index or anything after it.
func TestExecuteRunError(t *testing.T) {
	boom := errors.New("boom")
	const failAt = 10
	for _, workers := range []int{1, 4} {
		var merged []int
		err := Execute(Config{Runs: 32, Workers: workers},
			func(w int) (RunFunc[int], error) {
				return func(i int) (int, error) {
					if i == failAt {
						return 0, boom
					}
					return i, nil
				}, nil
			},
			func(i, r int) error {
				merged = append(merged, i)
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		for _, i := range merged {
			if i >= failAt {
				t.Errorf("workers=%d: merged index %d at or beyond failed run %d", workers, i, failAt)
			}
		}
	}
}

// TestExecuteDeterministicError checks concurrent failures resolve to
// the smallest-index error — the one the sequential path reports.
func TestExecuteDeterministicError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := Execute(Config{Runs: 64, Workers: 8},
			func(w int) (RunFunc[int], error) {
				return func(i int) (int, error) {
					if i%5 == 3 { // fails at 3, 8, 13, ...
						return 0, fmt.Errorf("run %d failed", i)
					}
					return i, nil
				}, nil
			}, nil)
		if err == nil || err.Error() != "run 3 failed" {
			t.Fatalf("trial %d: err = %v, want run 3's error", trial, err)
		}
	}
}

// TestExecuteNewWorkerError checks worker-construction failures win
// over run errors and abort cleanly.
func TestExecuteNewWorkerError(t *testing.T) {
	build := errors.New("no platform")
	err := Execute(Config{Runs: 16, Workers: 4},
		func(w int) (RunFunc[int], error) {
			if w == 2 {
				return nil, build
			}
			return func(i int) (int, error) { return i, nil }, nil
		}, nil)
	if !errors.Is(err, build) {
		t.Fatalf("err = %v, want construction error", err)
	}
}

// TestExecuteMergeError checks a merge failure propagates and stops the
// campaign.
func TestExecuteMergeError(t *testing.T) {
	sink := errors.New("disk full")
	for _, workers := range []int{1, 4} {
		var last int32
		err := Execute(Config{Runs: 64, Workers: workers},
			func(w int) (RunFunc[int], error) {
				return func(i int) (int, error) { return i, nil }, nil
			},
			func(i, r int) error {
				atomic.StoreInt32(&last, int32(i))
				if i == 5 {
					return sink
				}
				return nil
			})
		if !errors.Is(err, sink) {
			t.Fatalf("workers=%d: err = %v, want merge error", workers, err)
		}
		if got := atomic.LoadInt32(&last); got != 5 {
			t.Errorf("workers=%d: merge continued to index %d after failing at 5", workers, got)
		}
	}
}

// TestExecuteEdgeCases covers the degenerate configurations.
func TestExecuteEdgeCases(t *testing.T) {
	var calls atomic.Int32 // newWorker runs on the worker goroutines
	noRuns := func(w int) (RunFunc[int], error) {
		calls.Add(1)
		return func(i int) (int, error) { return i, nil }, nil
	}
	if err := Execute(Config{Runs: 0, Workers: 4}, noRuns, nil); err != nil {
		t.Fatalf("Runs=0: %v", err)
	}
	if calls.Load() != 0 {
		t.Error("Runs=0 built a worker")
	}
	if err := Execute(Config{Runs: -1}, noRuns, nil); err == nil {
		t.Error("Runs=-1 did not error")
	}
	// Workers > Runs clamps rather than spawning idle goroutines.
	if got := (Config{Runs: 3, Workers: 64}).WorkerCount(); got != 3 {
		t.Errorf("WorkerCount clamp: got %d, want 3", got)
	}
	if got := (Config{Runs: 100, Workers: 0}).WorkerCount(); got != min(runtime.NumCPU(), 100) {
		t.Errorf("WorkerCount default: got %d", got)
	}
	// A nil merge is allowed (fire-and-forget campaigns).
	if err := Execute(Config{Runs: 8, Workers: 4}, noRuns, nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

// TestExecuteStreamingMerge checks the merge does not wait for the
// whole campaign: with runs completing in index order, merge i must be
// able to run while runs > i are still executing. A buffered-barrier
// implementation would deadlock here, because run n-1 blocks until
// merge 0 has happened.
func TestExecuteStreamingMerge(t *testing.T) {
	const n = 8
	merged := make(chan int, n)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Execute(Config{Runs: n, Workers: 2},
			func(w int) (RunFunc[int], error) {
				return func(i int) (int, error) {
					if i == n-1 {
						<-release // last run parks until merge 0 observed
					}
					return i, nil
				}, nil
			},
			func(i, r int) error {
				merged <- i
				return nil
			})
	}()
	select {
	case i := <-merged:
		if i != 0 {
			t.Fatalf("first merge was %d", i)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merge 0 never happened while run n-1 was in flight: merge is not streaming")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestExecuteTraced checks the engine's span instrumentation: both the
// sequential and parallel paths emit a valid, analyzable span timeline
// (campaign + worker/setup/run spans, claim + merge spans on the
// parallel path) covering every run exactly once.
func TestExecuteTraced(t *testing.T) {
	const n = 40
	for _, workers := range []int{1, 4} {
		tr := telemetry.NewTracer()
		err := Execute(Config{Runs: n, Workers: workers, Tracer: tr},
			func(w int) (RunFunc[int], error) {
				wt := tr.Worker(w)
				return func(i int) (int, error) {
					// Phase spans nested under the engine's run span must
					// inherit its run index.
					m := wt.Begin(telemetry.SpanExecute, -1)
					wt.End(m)
					return i, nil
				}, nil
			},
			func(i, r int) error { return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		spans := tr.Spans()
		if _, err := telemetry.ValidateSpans(spans); err != nil {
			t.Fatalf("workers=%d: invalid spans: %v", workers, err)
		}
		counts := map[string]int{}
		execRuns := map[int]bool{}
		for _, s := range spans {
			counts[s.Kind]++
			if s.Kind == "execute" {
				if s.Run < 0 || s.Run >= n {
					t.Fatalf("workers=%d: execute span with run %d (not inherited)", workers, s.Run)
				}
				execRuns[s.Run] = true
			}
		}
		if counts["campaign"] != 1 || counts["run"] != n || counts["execute"] != n {
			t.Fatalf("workers=%d: span counts %v", workers, counts)
		}
		if counts["merge"] != n {
			t.Fatalf("workers=%d: %d merge spans, want %d", workers, counts["merge"], n)
		}
		if len(execRuns) != n {
			t.Fatalf("workers=%d: execute spans cover %d distinct runs, want %d", workers, len(execRuns), n)
		}
		if workers > 1 && (counts["claim"] == 0 || counts["merge.wait"] != n || counts["worker"] != workers) {
			t.Fatalf("workers=%d: parallel span counts %v", workers, counts)
		}
		rep, err := telemetry.AnalyzeSpans(spans)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.TotalRuns != n {
			t.Fatalf("workers=%d: report runs %d, want %d", workers, rep.TotalRuns, n)
		}
	}
}

// TestExecuteResumeFromCursor checks the checkpoint-resume contract:
// a campaign resumed at First=k merges exactly indices k..n-1, with
// results identical to the tail of an uninterrupted campaign, at every
// worker count.
func TestExecuteResumeFromCursor(t *testing.T) {
	const n, first = 40, 17
	run := func(w int) (RunFunc[int], error) {
		return func(i int) (int, error) { return i*i + 3, nil }, nil
	}
	for _, workers := range []int{1, 2, 8} {
		var order []int
		err := Execute(Config{Runs: n, First: first, Workers: workers}, run,
			func(i, r int) error {
				if r != i*i+3 {
					t.Errorf("workers=%d: merge(%d) got %d", workers, i, r)
				}
				order = append(order, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(order) != n-first {
			t.Fatalf("workers=%d: merged %d runs, want %d", workers, len(order), n-first)
		}
		for k, i := range order {
			if i != first+k {
				t.Fatalf("workers=%d: merge order %v not canonical from %d", workers, order, first)
			}
		}
	}
	// Degenerate cursors.
	if err := Execute(Config{Runs: 5, First: 5}, run, nil); err != nil {
		t.Fatalf("First==Runs should be a no-op, got %v", err)
	}
	if err := Execute(Config{Runs: 5, First: 6}, run, nil); err == nil {
		t.Fatal("First>Runs should error")
	}
	if err := Execute(Config{Runs: 5, First: -1}, run, nil); err == nil {
		t.Fatal("negative First should error")
	}
}

// TestExecuteInterrupt checks cooperative cancellation: after Interrupt
// fires the engine stops handing out runs, drains in-flight ones,
// merges only a contiguous canonical prefix (beyond the cursor), and
// returns ErrInterrupted.
func TestExecuteInterrupt(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 10000
		const gate = 100 // runs at or beyond this index block until the interrupt
		interrupt := make(chan struct{})
		var merged []int
		stopAt := 25
		err := Execute(Config{Runs: n, Workers: workers, Interrupt: interrupt},
			func(w int) (RunFunc[int], error) {
				return func(i int) (int, error) {
					if i >= gate {
						<-interrupt
					}
					return i, nil
				}, nil
			},
			func(i, r int) error {
				merged = append(merged, i)
				if len(merged) == stopAt {
					close(interrupt)
				}
				return nil
			})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("workers=%d: err = %v, want ErrInterrupted", workers, err)
		}
		if len(merged) >= n || len(merged) < stopAt {
			t.Fatalf("workers=%d: merged %d runs", workers, len(merged))
		}
		for k, i := range merged {
			if i != k {
				t.Fatalf("workers=%d: merged prefix %v not contiguous", workers, merged[:k+1])
			}
		}
	}
}

// TestExecuteInterruptErrorPrecedence: a real run error wins over the
// interruption, preserving deterministic error resolution.
func TestExecuteInterruptErrorPrecedence(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt) // fires immediately
	boom := errors.New("boom")
	err := Execute(Config{Runs: 8, Workers: 1, Interrupt: interrupt},
		func(w int) (RunFunc[int], error) { return nil, boom },
		nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want worker-construction error", err)
	}
}

// TestExecuteInterruptBeforeStart: an already-fired interrupt merges
// nothing.
func TestExecuteInterruptBeforeStart(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	var merged int
	err := Execute(Config{Runs: 8, Workers: 1, Interrupt: interrupt},
		func(w int) (RunFunc[int], error) {
			return func(i int) (int, error) { return i, nil }, nil
		},
		func(i, r int) error { merged++; return nil })
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if merged != 0 {
		t.Fatalf("merged %d runs after pre-fired interrupt", merged)
	}
}
