// Package determtest is the shared byte-identity harness behind every
// campaign determinism suite — the engine tests, the experiments
// suite, and the service-level suite of internal/serve.
//
// The campaign stack's hard invariant is that everything a campaign
// emits is a pure function of its configuration: worker count,
// execution path (CLI, engine, or service), cancellation + resubmit,
// and checkpoint/restore must all be unobservable in the output. Each
// suite captures the surfaces it produces into an Output and compares
// two captures with Diff/Check instead of hand-rolling its own
// field-by-field comparison; one checker means one definition of
// "byte-identical" across the repository.
package determtest

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// Output is everything a campaign execution can emit, captured for
// comparison. A suite fills only the surfaces its path produces; nil
// fields on both sides compare equal, and a nil field on exactly one
// side is a mismatch (one path produced a surface the other did not).
type Output struct {
	// Cycles is the per-run execution-time series in canonical order.
	Cycles []float64
	// Results holds the full per-run result records (PMCs, traces,
	// attribution, ...); compared with reflect.DeepEqual so any
	// result type works.
	Results any
	// Attribution is the campaign-aggregate cycle attribution.
	Attribution any
	// Stream is the MBPTA stream ingestion order (the analysis input).
	Stream []float64
	// Progress is the observed progress-callback sequence.
	Progress []int
	// Telemetry is the full telemetry export (JSONL dump: metrics,
	// events, sequence numbers, campaign-clock timestamps).
	Telemetry []byte
	// Report is the rendered MBPTA analysis report.
	Report []byte
}

// Diff compares two captures surface by surface and returns one
// human-readable line per mismatch; an empty slice means want and got
// are indistinguishable.
func Diff(want, got Output) []string {
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if !reflect.DeepEqual(want.Cycles, got.Cycles) {
		add("cycles differ (%d vs %d runs)%s", len(want.Cycles), len(got.Cycles),
			firstCycleDiff(want.Cycles, got.Cycles))
	}
	if !deepEqualAny(want.Results, got.Results) {
		add("run results differ (PMCs/trace/attribution)")
	}
	if !deepEqualAny(want.Attribution, got.Attribution) {
		add("campaign attribution differs: %+v vs %+v", want.Attribution, got.Attribution)
	}
	if !reflect.DeepEqual(want.Stream, got.Stream) {
		add("MBPTA stream ingestion differs (%d vs %d observations)",
			len(want.Stream), len(got.Stream))
	}
	if !reflect.DeepEqual(want.Progress, got.Progress) {
		add("progress callbacks differ: %v vs %v", want.Progress, got.Progress)
	}
	if !bytes.Equal(want.Telemetry, got.Telemetry) {
		add("telemetry export differs (%d vs %d bytes, first at byte %d)",
			len(want.Telemetry), len(got.Telemetry), firstByteDiff(want.Telemetry, got.Telemetry))
	}
	if !bytes.Equal(want.Report, got.Report) {
		add("MBPTA report differs (%d vs %d bytes, first at byte %d)",
			len(want.Report), len(got.Report), firstByteDiff(want.Report, got.Report))
	}
	return diffs
}

// Check fails t with every surface on which got differs from want;
// label names the comparison (e.g. "workers=8 vs sequential").
func Check(t testing.TB, label string, want, got Output) {
	t.Helper()
	for _, d := range Diff(want, got) {
		t.Errorf("%s: %s", label, d)
	}
}

// CheckCanonicalProgress fails t unless progress is exactly 1..n — the
// canonical-order merge contract made visible through the progress
// callback.
func CheckCanonicalProgress(t testing.TB, progress []int, n int) {
	t.Helper()
	if len(progress) != n {
		t.Errorf("progress fired %d times, want %d", len(progress), n)
		return
	}
	for i, d := range progress {
		if d != i+1 {
			t.Errorf("progress not in canonical order: %v", progress)
			return
		}
	}
}

// deepEqualAny treats two nil interfaces as equal and otherwise
// defers to reflect.DeepEqual.
func deepEqualAny(a, b any) bool {
	if a == nil && b == nil {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// firstCycleDiff locates the first diverging run for the failure
// message ("" when only the lengths differ).
func firstCycleDiff(a, b []float64) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf(", first at run %d: %v vs %v", i, a[i], b[i])
		}
	}
	return ""
}

// firstByteDiff returns the offset of the first differing byte (or the
// shorter length when one is a prefix of the other).
func firstByteDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
