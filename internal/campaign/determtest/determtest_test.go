package determtest

import (
	"strings"
	"testing"
)

func TestDiffEqual(t *testing.T) {
	o := Output{
		Cycles:    []float64{1, 2, 3},
		Results:   []int{4, 5},
		Stream:    []float64{1, 2, 3},
		Progress:  []int{1, 2, 3},
		Telemetry: []byte("{}\n"),
		Report:    []byte("pWCET"),
	}
	if d := Diff(o, o); len(d) != 0 {
		t.Fatalf("identical outputs diff: %v", d)
	}
	if d := Diff(Output{}, Output{}); len(d) != 0 {
		t.Fatalf("empty outputs diff: %v", d)
	}
}

func TestDiffFindsEverySurface(t *testing.T) {
	want := Output{
		Cycles:    []float64{1, 2},
		Results:   []int{1},
		Stream:    []float64{1, 2},
		Progress:  []int{1, 2},
		Telemetry: []byte("aa"),
		Report:    []byte("rr"),
	}
	got := Output{
		Cycles:    []float64{1, 9},
		Results:   []int{2},
		Stream:    []float64{1},
		Progress:  []int{1},
		Telemetry: []byte("ab"),
		Report:    []byte("rx"),
	}
	diffs := Diff(want, got)
	if len(diffs) != 6 {
		t.Fatalf("want 6 mismatches, got %d: %v", len(diffs), diffs)
	}
	joined := strings.Join(diffs, "\n")
	for _, surface := range []string{"cycles", "results", "stream", "progress", "telemetry", "report"} {
		if !strings.Contains(strings.ToLower(joined), surface) {
			t.Errorf("no mismatch names surface %q:\n%s", surface, joined)
		}
	}
	// The byte-level reports locate the divergence.
	if !strings.Contains(joined, "first at run 1") {
		t.Errorf("cycle diff does not locate the run:\n%s", joined)
	}
	if !strings.Contains(joined, "first at byte 1") {
		t.Errorf("byte diff does not locate the offset:\n%s", joined)
	}
}

func TestDiffNilVsPresent(t *testing.T) {
	// A surface produced by one path but not the other is a mismatch.
	if d := Diff(Output{Telemetry: []byte("x")}, Output{}); len(d) != 1 {
		t.Fatalf("want 1 mismatch, got %v", d)
	}
	if d := Diff(Output{}, Output{Results: []int{1}}); len(d) != 1 {
		t.Fatalf("want 1 mismatch, got %v", d)
	}
}

func TestCheckCanonicalProgress(t *testing.T) {
	rec := &recorder{}
	CheckCanonicalProgress(rec, []int{1, 2, 3}, 3)
	if rec.failed {
		t.Fatal("canonical progress flagged as failure")
	}
	rec = &recorder{}
	CheckCanonicalProgress(rec, []int{1, 3, 2}, 3)
	if !rec.failed {
		t.Fatal("out-of-order progress not flagged")
	}
	rec = &recorder{}
	CheckCanonicalProgress(rec, []int{1, 2}, 3)
	if !rec.failed {
		t.Fatal("short progress not flagged")
	}
}

// recorder is a minimal testing.TB that records failure.
type recorder struct {
	testing.TB
	failed bool
}

func (r *recorder) Helper()                        {}
func (r *recorder) Errorf(string, ...any)          { r.failed = true }
func (r *recorder) Error(...any)                   { r.failed = true }
func (r *recorder) Fatalf(format string, a ...any) { r.failed = true }
