// Package campaign is the parallel execution engine behind every
// measurement campaign: it shards a series' N independent runs across a
// pool of workers (each owning its own platform instance) and merges
// the results back in canonical run order, so that the output of a
// parallel campaign is byte-identical to the strictly sequential legacy
// loop — the engine's determinism invariant, the campaign counterpart
// of telemetry's cycle-conservation invariant.
//
// The MBPTA protocol (§IV of the paper) needs hundreds to thousands of
// independent randomised runs per configuration before EVT applies;
// every run is a self-contained seeded simulation, which makes the
// campaign embarrassingly parallel as long as (a) per-run seeds come
// from a schedule that does not depend on execution order and (b) all
// observable side effects (series slices, telemetry metrics, event
// ordering, progress callbacks) are applied during a single-threaded
// merge in canonical order.
package campaign

// The seed schedule: every run's PRNG seed is derived from the campaign
// base seed by a splittable splitmix64-style schedule,
//
//	seed(i) = mix64(state + (i+1)*golden)
//
// where state is the mixed base and golden is the 64-bit golden-ratio
// increment of the Weyl sequence. The schedule has three properties the
// engine relies on:
//
//  1. Order independence: seed(i) is a pure function of (base, i), so a
//     worker can compute any run's seed without coordination — the
//     precondition for dynamic (work-stealing) shard assignment.
//  2. Injectivity: mix64 is a bijection on uint64 and the Weyl lattice
//     state + (i+1)*golden visits distinct points for every i < 2^64
//     (golden is odd), so derived seeds never collide within a
//     campaign. The test suite pins this across 1e6 seeds.
//  3. Stability: the schedule is pure integer arithmetic with no
//     dependence on Go's runtime, maps or math/rand, so derived seeds
//     are identical across Go versions and platforms. Golden values are
//     pinned in the tests.

// golden is 2^64/phi rounded to odd: the Weyl-sequence increment used
// by splitmix64 (Steele, Lea & Flood, OOPSLA 2014).
const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finaliser: an invertible avalanche mix whose
// output passes BigCrush when driven by a Weyl sequence.
func mix64(z uint64) uint64 {
	z += golden
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Schedule derives per-run PRNG seeds from one campaign base seed. The
// zero value is a valid schedule (base 0); NewSchedule is the usual
// constructor. Schedules are values: copying is cheap and safe, and a
// Schedule may be used concurrently from any number of workers.
type Schedule struct {
	state uint64
}

// NewSchedule returns the seed schedule of a campaign with the given
// base seed. Distinct bases give statistically independent schedules;
// the base itself is whitened so that adjacent bases (1, 2, 3, ... as
// the measurement protocol draws them) do not produce related streams.
func NewSchedule(base uint64) Schedule {
	return Schedule{state: mix64(base)}
}

// Seed returns the PRNG seed of run i. It is a pure function of the
// schedule and i: any worker may compute any run's seed in any order.
// Seeds within one schedule never collide (mix64 is a bijection over
// the distinct lattice points state + (i+1)*golden).
func (s Schedule) Seed(i int) uint64 {
	return mix64(s.state + (uint64(i)+1)*golden)
}

// Split returns an independent child schedule for the given stream
// index, used when one campaign needs several uncorrelated seed streams
// (e.g. layout seeds and bus-contention seeds). Children of distinct
// streams, and children versus their parent, produce unrelated seeds.
func (s Schedule) Split(stream uint64) Schedule {
	// Offset the stream index away from the run-seed lattice: run seeds
	// use (i+1)*golden with small i, so the child state is pushed into a
	// different region of the sequence before re-mixing.
	return Schedule{state: mix64(s.state ^ mix64(^stream))}
}

// Base returns the mixed internal state, exposed for diagnostics and
// golden tests only.
func (s Schedule) Base() uint64 { return s.state }
