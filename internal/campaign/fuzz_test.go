package campaign

import "testing"

// FuzzSeedSchedule fuzzes the schedule's algebraic properties over
// arbitrary (base, stream, index) triples:
//
//   - determinism: the same inputs always give the same seed,
//   - locality: adjacent runs of one schedule get distinct seeds,
//   - separation: a Split child never equals its parent, and the two
//     disagree on the seed of every probed run,
//   - purity: drawing seeds does not mutate the schedule value.
//
// `go test -fuzz=FuzzSeedSchedule ./internal/campaign` explores; the
// seeded corpus below runs on every plain `go test`.
func FuzzSeedSchedule(f *testing.F) {
	f.Add(uint64(0), uint64(0), 0)
	f.Add(uint64(1), uint64(1), 1)
	f.Add(uint64(1001), uint64(2), 999)
	f.Add(uint64(0xDEADBEEF), uint64(0xFFFFFFFFFFFFFFFF), 1<<20)
	f.Add(^uint64(0), uint64(42), 0)
	f.Fuzz(func(t *testing.T, base, stream uint64, i int) {
		if i < 0 {
			i = -(i + 1) // fold negatives into the valid index range
		}
		s := NewSchedule(base)
		if got, again := s.Seed(i), s.Seed(i); got != again {
			t.Fatalf("Seed(%d) not deterministic: %#x vs %#x", i, got, again)
		}
		if s.Seed(i) == s.Seed(i+1) {
			t.Fatalf("adjacent seeds collide at base %#x, i %d", base, i)
		}
		if s != NewSchedule(base) {
			t.Fatal("Schedule mutated by Seed")
		}
		child := s.Split(stream)
		if child == s {
			t.Fatalf("Split(%#x) returned the parent", stream)
		}
		if child.Seed(i) == s.Seed(i) {
			t.Fatalf("parent and Split(%#x) agree on Seed(%d)", stream, i)
		}
		if child != s.Split(stream) {
			t.Fatal("Split not deterministic")
		}
	})
}
