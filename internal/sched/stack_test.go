package sched

// Partition stack budgets: the static bounds from internal/analysis
// feed the same schedulability verdict as the WCET bounds — an IMA
// partition descriptor reserves both a time window and a stack
// allocation, and exceeding either is a V&V failure.

import (
	"testing"

	"dsr/internal/analysis"
	"dsr/internal/spaceapp"
)

func stackTask(bound, budget int) Task {
	return Task{
		Name: "t", PeriodMillis: 100, WindowBudgetMillis: 10, WCETCycles: 1000,
		StackBoundBytes: bound, StackBudgetBytes: budget,
	}
}

func TestStackBudgetEnforced(t *testing.T) {
	rep, err := Check([]Task{stackTask(4096, 8192)}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable || !rep.Results[0].StackFits {
		t.Error("fitting stack budget reported as violation")
	}
	if got := rep.Results[0].StackSlackBytes; got != 4096 {
		t.Errorf("stack slack=%d, want 4096", got)
	}

	rep, err = Check([]Task{stackTask(8192, 4096)}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable || rep.Results[0].StackFits {
		t.Error("stack overrun not flagged")
	}
	if got := rep.Results[0].StackSlackBytes; got != -4096 {
		t.Errorf("stack slack=%d, want -4096", got)
	}
}

func TestStackBudgetUncheckedWhenUnset(t *testing.T) {
	// Zero on either side skips the check — tasks without a static
	// analysis keep the previous behaviour.
	for _, tk := range []Task{stackTask(0, 4096), stackTask(4096, 0), stackTask(0, 0)} {
		rep, err := Check([]Task{tk}, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Schedulable || !rep.Results[0].StackFits {
			t.Errorf("unset stack budget (bound=%d budget=%d) failed the check",
				tk.StackBoundBytes, tk.StackBudgetBytes)
		}
	}
}

func TestStackBudgetRejectsNegative(t *testing.T) {
	if _, err := Check([]Task{stackTask(-1, 0)}, 50_000); err == nil {
		t.Error("negative stack bound accepted")
	}
}

// TestControlTaskStackBudgetFromAnalysis wires the real static analysis
// into a partition descriptor for the control task, the end-to-end path
// an integrator follows: AnalyzeStack → StackBoundBytes → Check.
func TestControlTaskStackBudgetFromAnalysis(t *testing.T) {
	p, err := spaceapp.BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := analysis.AnalyzeStack(p, analysis.StackOptions{NumWindows: 8})
	if err != nil {
		t.Fatal(err)
	}
	task := Task{
		Name: "control", PeriodMillis: 100, WindowBudgetMillis: 20,
		WCETCycles:       1_000_000,
		StackBoundBytes:  int(sb.MaxStackBytes),
		StackBudgetBytes: 4096, // one page, generous for the control task
	}
	rep, err := Check([]Task{task}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Errorf("control task (stack bound %d) does not fit a 4KB budget", sb.MaxStackBytes)
	}
	// And a budget below the bound must fail.
	task.StackBudgetBytes = int(sb.MaxStackBytes) - 8
	rep, err = Check([]Task{task}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Error("budget below the static bound accepted")
	}
}
