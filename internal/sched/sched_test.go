package sched

import (
	"testing"
	"testing/quick"
)

// the case study's dimensioning: 80 MHz core, control 1 s / processing
// 100 ms periods.
const cpm = 80_000

func caseStudyTasks() []Task {
	// Note the control window: a 200ms contiguous window cannot coexist
	// with processing's 60ms-every-100ms windows (HyperperiodFit catches
	// that); 30ms fits in the inter-processing gaps and is still ~7x the
	// control task's pWCET.
	return []Task{
		{Name: "control", PeriodMillis: 1000, WCETCycles: 280_279, WindowBudgetMillis: 30},
		{Name: "processing", PeriodMillis: 100, WCETCycles: 1_500_000, WindowBudgetMillis: 60},
	}
}

func TestCheckCaseStudy(t *testing.T) {
	rep, err := Check(caseStudyTasks(), cpm)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Fatal("case study should be schedulable")
	}
	for _, r := range rep.Results {
		if !r.Fits || r.SlackCycles <= 0 {
			t.Errorf("%s: fits=%v slack=%f", r.Task.Name, r.Fits, r.SlackCycles)
		}
	}
	// control: 280279 / 80e6 cycles-per-second ≈ 0.35% utilisation.
	if u := rep.Results[0].Utilisation; u < 0.001 || u > 0.01 {
		t.Errorf("control utilisation=%f", u)
	}
	if rep.TotalUtilisation >= 1 {
		t.Errorf("total utilisation=%f", rep.TotalUtilisation)
	}
}

func TestCheckDetectsOverrun(t *testing.T) {
	tasks := caseStudyTasks()
	tasks[0].WCETCycles = 17_000_000 // > 200ms * 80k = 16M budget
	rep, err := Check(tasks, cpm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Error("overrunning task set declared schedulable")
	}
	if rep.Results[0].Fits || rep.Results[0].SlackCycles >= 0 {
		t.Error("overrun not reflected in result")
	}
}

func TestCheckDetectsOverUtilisation(t *testing.T) {
	tasks := []Task{
		{Name: "a", PeriodMillis: 10, WCETCycles: 7 * cpm, WindowBudgetMillis: 8},
		{Name: "b", PeriodMillis: 10, WCETCycles: 6 * cpm, WindowBudgetMillis: 7},
	}
	rep, err := Check(tasks, cpm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Error("130% utilisation declared schedulable")
	}
}

func TestCheckValidation(t *testing.T) {
	bad := [][]Task{
		{{Name: "p0", PeriodMillis: 0, WCETCycles: 1, WindowBudgetMillis: 1}},
		{{Name: "w0", PeriodMillis: 10, WCETCycles: 1, WindowBudgetMillis: 0}},
		{{Name: "wgtp", PeriodMillis: 10, WCETCycles: 1, WindowBudgetMillis: 20}},
		{{Name: "c0", PeriodMillis: 10, WCETCycles: 0, WindowBudgetMillis: 5}},
	}
	for _, tasks := range bad {
		if _, err := Check(tasks, cpm); err == nil {
			t.Errorf("%s: accepted", tasks[0].Name)
		}
	}
	if _, err := Check(caseStudyTasks(), 0); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestMinWindow(t *testing.T) {
	if got := MinWindow(280_279, cpm); got != 4 {
		t.Errorf("MinWindow=%d, want 4 (3.5ms rounds up)", got)
	}
	if got := MinWindow(80_000, cpm); got != 1 {
		t.Errorf("exact fit=%d, want 1", got)
	}
	if got := MinWindow(0, cpm); got != 0 {
		t.Error("zero WCET")
	}
}

// Property: MinWindow is the least w with w*cpm >= wcet.
func TestMinWindowProperty(t *testing.T) {
	f := func(raw uint32) bool {
		wcet := float64(raw%10_000_000) + 1
		w := MinWindow(wcet, cpm)
		return float64(w)*cpm >= wcet && float64(w-1)*cpm < wcet
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHyperperiodFit(t *testing.T) {
	hyper, packs, err := HyperperiodFit(caseStudyTasks())
	if err != nil {
		t.Fatal(err)
	}
	if hyper != 1000 {
		t.Errorf("hyperperiod=%d, want 1000", hyper)
	}
	if !packs {
		t.Error("case study windows should pack")
	}
}

func TestHyperperiodFitRejectsOverpacked(t *testing.T) {
	tasks := []Task{
		{Name: "a", PeriodMillis: 10, WCETCycles: 1, WindowBudgetMillis: 6},
		{Name: "b", PeriodMillis: 10, WCETCycles: 1, WindowBudgetMillis: 6},
	}
	_, packs, err := HyperperiodFit(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if packs {
		t.Error("12ms of windows packed into a 10ms period")
	}
}

func TestHyperperiodFitHarmonicAndEmpty(t *testing.T) {
	if _, packs, err := HyperperiodFit(nil); err != nil || !packs {
		t.Error("empty set")
	}
	tasks := []Task{
		{Name: "fast", PeriodMillis: 25, WCETCycles: 1, WindowBudgetMillis: 10},
		{Name: "slow", PeriodMillis: 40, WCETCycles: 1, WindowBudgetMillis: 10},
	}
	hyper, _, err := HyperperiodFit(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hyper != 200 {
		t.Errorf("lcm(25,40)=%d, want 200", hyper)
	}
}

func TestFitFixedPhaseCaseStudy(t *testing.T) {
	plan, err := Fit(caseStudyTasks(), FixedPhase)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Packs || plan.HyperMillis != 1000 {
		t.Fatalf("fixed-phase plan: packs=%v hyper=%d", plan.Packs, plan.HyperMillis)
	}
	// Processing (shorter period) is placed first at phase 0; control's
	// 30ms window then lands in the first inter-processing gap.
	if off, ok := plan.Offset("processing"); !ok || off != 0 {
		t.Errorf("processing offset=%d ok=%v, want 0", off, ok)
	}
	if off, ok := plan.Offset("control"); !ok || off != 60 {
		t.Errorf("control offset=%d ok=%v, want 60", off, ok)
	}
	// Fixed phase means every activation shares the task's offset.
	for _, pl := range plan.Placements {
		for i, off := range pl.Offsets {
			if off != pl.OffsetMillis {
				t.Errorf("%s activation %d offset %d != fixed phase %d",
					pl.Task, i, off, pl.OffsetMillis)
			}
		}
	}
}

// The task set that separates the modes: A (T=3,W=1) forces B (T=4,W=2)
// to different offsets in different periods, so the jittered packing
// succeeds while no single fixed phase exists for B.
func jitterOnlyTasks() []Task {
	return []Task{
		{Name: "A", PeriodMillis: 3, WCETCycles: 1, WindowBudgetMillis: 1},
		{Name: "B", PeriodMillis: 4, WCETCycles: 1, WindowBudgetMillis: 2},
	}
}

func TestFitModesDiverge(t *testing.T) {
	jit, err := Fit(jitterOnlyTasks(), Jittered)
	if err != nil {
		t.Fatal(err)
	}
	if !jit.Packs {
		t.Fatal("jittered mode should pack A(3,1)+B(4,2)")
	}
	// The jittered plan really does move B between periods — the
	// release jitter HyperperiodFit's old "packs" verdict hid.
	var bOffsets []int
	for _, pl := range jit.Placements {
		if pl.Task == "B" {
			bOffsets = pl.Offsets
		}
	}
	distinct := map[int]bool{}
	for _, off := range bOffsets {
		distinct[off] = true
	}
	if len(distinct) < 2 {
		t.Errorf("jittered plan gave B constant offsets %v; expected per-period drift", bOffsets)
	}

	fixed, err := Fit(jitterOnlyTasks(), FixedPhase)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Packs {
		t.Error("fixed-phase mode packed a set with no common phase for B")
	}
	if fixed.Failed != "B" {
		t.Errorf("failed task = %q, want B", fixed.Failed)
	}

	// The legacy entry point is the jittered mode.
	_, packs, err := HyperperiodFit(jitterOnlyTasks())
	if err != nil || !packs {
		t.Errorf("HyperperiodFit (jittered) packs=%v err=%v", packs, err)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]Task{{Name: "t", PeriodMillis: 0, WindowBudgetMillis: 1}}, FixedPhase); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Fit([]Task{{Name: "t", PeriodMillis: 10, WindowBudgetMillis: 11}}, FixedPhase); err == nil {
		t.Error("window beyond period accepted")
	}
	if _, err := Fit(caseStudyTasks(), FitMode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
	if plan, err := Fit(nil, FixedPhase); err != nil || !plan.Packs {
		t.Error("empty set should pack")
	}
	if _, ok := (&FitPlan{}).Offset("missing"); ok {
		t.Error("Offset found a task in an empty plan")
	}
	if FixedPhase.String() != "fixed-phase" || Jittered.String() != "jittered" {
		t.Error("FitMode strings")
	}
}

// Property: whenever FixedPhase packs, Jittered packs too (fixed-phase
// plans are a subset of jittered plans).
func TestFitFixedImpliesJittered(t *testing.T) {
	f := func(p1, w1, p2, w2 uint8) bool {
		a := Task{Name: "a", PeriodMillis: int(p1%20) + 2, WCETCycles: 1}
		a.WindowBudgetMillis = int(w1)%a.PeriodMillis + 1
		b := Task{Name: "b", PeriodMillis: int(p2%20) + 2, WCETCycles: 1}
		b.WindowBudgetMillis = int(w2)%b.PeriodMillis + 1
		fixed, err := Fit([]Task{a, b}, FixedPhase)
		if err != nil {
			return false
		}
		jit, err := Fit([]Task{a, b}, Jittered)
		if err != nil {
			return false
		}
		return !fixed.Packs || jit.Packs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a single task always packs when its window fits its period.
func TestHyperperiodSingleTaskProperty(t *testing.T) {
	f := func(p, w uint8) bool {
		period := int(p%50) + 2
		win := int(w)%period + 1
		_, packs, err := HyperperiodFit([]Task{
			{Name: "t", PeriodMillis: period, WCETCycles: 1, WindowBudgetMillis: win},
		})
		return err == nil && packs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
