// Package sched provides the scheduling-analysis half of timing V&V:
// §I of the paper frames the process as deriving "a timing bound for
// each software unit together with a scheduling of those software units
// so that system's timing requirements are fulfilled". Given per-task
// WCET bounds — deterministic (MOET + margin) or probabilistic (pWCET
// at the criticality-appropriate exceedance) — and the cyclic partition
// schedule, this package verifies that every activation fits its window
// and reports slack and utilisation, so the two bounding approaches can
// be compared end to end.
package sched

import (
	"fmt"
	"sort"

	"dsr/internal/mem"
)

// Task is one schedulable unit with its derived WCET bound.
type Task struct {
	Name string
	// PeriodMillis is the activation period.
	PeriodMillis int
	// WCETCycles is the bound used for analysis: a pWCET quantile for
	// MBPTA, or MOET × (1+margin) for current practice.
	WCETCycles float64
	// WindowBudgetMillis is the partition window reserved per activation.
	WindowBudgetMillis int
	// StackBoundBytes is the static worst-case stack excursion of the
	// task (analysis.StackBound.MaxStackBytes — under DSR, computed with
	// the runtime's StackOffsetBound so random offsets are covered).
	// Zero means "not analysed"; the stack check is skipped.
	StackBoundBytes int
	// StackBudgetBytes is the partition stack allocation the integrator
	// reserved for the task. Zero disables the check.
	StackBudgetBytes int
}

// Result is the verdict for one task.
type Result struct {
	Task Task
	// BudgetCycles is the window budget in cycles.
	BudgetCycles float64
	// SlackCycles is budget - WCET (negative when the task does not fit).
	SlackCycles float64
	// Fits reports WCET <= budget.
	Fits bool
	// Utilisation is WCET / period, the long-run core share.
	Utilisation float64
	// StackSlackBytes is StackBudgetBytes - StackBoundBytes when both
	// are set (negative when the static bound exceeds the allocation).
	StackSlackBytes int
	// StackFits reports whether the static stack bound fits the budget
	// (vacuously true when either side is zero/unchecked).
	StackFits bool
}

// Report is the system-level outcome.
type Report struct {
	Results []Result
	// TotalUtilisation sums the per-task utilisations.
	TotalUtilisation float64
	// Schedulable is true when every task fits its window and the total
	// utilisation is below one.
	Schedulable bool
}

// Check analyses the task set on a core running cyclesPerMilli cycles
// per millisecond.
func Check(tasks []Task, cyclesPerMilli mem.Cycles) (*Report, error) {
	if cyclesPerMilli == 0 {
		return nil, fmt.Errorf("sched: zero clock rate")
	}
	rep := &Report{Schedulable: true}
	for _, t := range tasks {
		if t.PeriodMillis <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive period", t.Name)
		}
		if t.WindowBudgetMillis <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive window", t.Name)
		}
		if t.WindowBudgetMillis > t.PeriodMillis {
			return nil, fmt.Errorf("sched: task %q window %dms exceeds period %dms",
				t.Name, t.WindowBudgetMillis, t.PeriodMillis)
		}
		if t.WCETCycles <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive WCET bound", t.Name)
		}
		if t.StackBoundBytes < 0 || t.StackBudgetBytes < 0 {
			return nil, fmt.Errorf("sched: task %q has a negative stack bound or budget", t.Name)
		}
		budget := float64(t.WindowBudgetMillis) * float64(cyclesPerMilli)
		period := float64(t.PeriodMillis) * float64(cyclesPerMilli)
		r := Result{
			Task:         t,
			BudgetCycles: budget,
			SlackCycles:  budget - t.WCETCycles,
			Fits:         t.WCETCycles <= budget,
			Utilisation:  t.WCETCycles / period,
			StackFits:    true,
		}
		if t.StackBudgetBytes > 0 && t.StackBoundBytes > 0 {
			r.StackSlackBytes = t.StackBudgetBytes - t.StackBoundBytes
			r.StackFits = t.StackBoundBytes <= t.StackBudgetBytes
		}
		rep.Results = append(rep.Results, r)
		rep.TotalUtilisation += r.Utilisation
		if !r.Fits || !r.StackFits {
			rep.Schedulable = false
		}
	}
	if rep.TotalUtilisation > 1 {
		rep.Schedulable = false
	}
	return rep, nil
}

// MinWindow returns the smallest integer window budget (in ms) that fits
// the bound — the dimensioning question a system integrator asks, and
// where a tighter pWCET directly buys schedulable capacity.
func MinWindow(wcetCycles float64, cyclesPerMilli mem.Cycles) int {
	if wcetCycles <= 0 {
		return 0
	}
	cpm := float64(cyclesPerMilli)
	w := int(wcetCycles / cpm)
	if float64(w)*cpm < wcetCycles {
		w++
	}
	return w
}

// FitMode selects what kind of cyclic-executive placement Fit
// constructs.
type FitMode int

const (
	// FixedPhase requires one offset per task: activation k of a task
	// with period T starts at k*T + offset for a single offset chosen
	// once. This is the only mode whose "packs" verdict certifies a
	// realizable fixed-phase cyclic executive (an rtos window table),
	// and its offsets are the det baseline a schedule randomizer
	// perturbs.
	FixedPhase FitMode = iota
	// Jittered allows each activation its own offset within its period.
	// It packs strictly more task sets than FixedPhase, but the
	// resulting placement is not a fixed-phase executive: a task may
	// run at different offsets in different periods (release jitter by
	// construction), so "packs" here answers a weaker question.
	Jittered
)

func (m FitMode) String() string {
	if m == FixedPhase {
		return "fixed-phase"
	}
	return "jittered"
}

// Placement is one task's chosen offset(s) in a FitPlan.
type Placement struct {
	Task string
	// OffsetMillis is the fixed phase in FixedPhase mode. In Jittered
	// mode it is the offset of the task's first activation; later
	// activations may differ (see Offsets).
	OffsetMillis int
	// Offsets lists the per-activation offsets over the hyperperiod
	// (all equal in FixedPhase mode).
	Offsets []int
}

// FitPlan is the outcome of a constructive hyperperiod packing.
type FitPlan struct {
	HyperMillis int
	Mode        FitMode
	Packs       bool
	// Placements holds the chosen offsets, in rate-monotonic placement
	// order, for the tasks placed before packing failed (all tasks when
	// Packs).
	Placements []Placement
	// Failed names the first task that could not be placed ("" when
	// Packs).
	Failed string
}

// Offset returns the fixed-phase offset chosen for the named task and
// whether the plan placed it.
func (p *FitPlan) Offset(task string) (int, bool) {
	for _, pl := range p.Placements {
		if pl.Task == task {
			return pl.OffsetMillis, true
		}
	}
	return 0, false
}

// Fit lays the tasks into one hyperperiod (lcm of periods) first-fit in
// rate-monotonic order and reports whether the windows pack, along with
// the chosen offsets. FixedPhase demands one offset per task (a
// realizable cyclic-executive window table); Jittered reproduces the
// historical HyperperiodFit behaviour where every activation may land
// at a different offset.
func Fit(tasks []Task, mode FitMode) (*FitPlan, error) {
	plan := &FitPlan{Mode: mode, Packs: true}
	if len(tasks) == 0 {
		return plan, nil
	}
	hyper := 1
	for _, t := range tasks {
		if t.PeriodMillis <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive period", t.Name)
		}
		if t.WindowBudgetMillis <= 0 || t.WindowBudgetMillis > t.PeriodMillis {
			return nil, fmt.Errorf("sched: task %q window %dms does not fit period %dms",
				t.Name, t.WindowBudgetMillis, t.PeriodMillis)
		}
		hyper = lcm(hyper, t.PeriodMillis)
		if hyper > 1<<20 {
			return nil, fmt.Errorf("sched: hyperperiod overflow")
		}
	}
	plan.HyperMillis = hyper
	// Busy map at millisecond granularity.
	busy := make([]bool, hyper)
	free := func(at, n int) bool {
		for m := 0; m < n; m++ {
			if busy[at+m] {
				return false
			}
		}
		return true
	}
	occupy := func(at, n int) {
		for m := 0; m < n; m++ {
			busy[at+m] = true
		}
	}
	order := append([]Task(nil), tasks...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].PeriodMillis < order[j].PeriodMillis })
	for _, t := range order {
		acts := hyper / t.PeriodMillis
		pl := Placement{Task: t.Name, Offsets: make([]int, 0, acts)}
		switch mode {
		case FixedPhase:
			// One offset must be free in every period simultaneously.
			chosen := -1
			for off := 0; off+t.WindowBudgetMillis <= t.PeriodMillis && chosen < 0; off++ {
				ok := true
				for start := 0; start < hyper; start += t.PeriodMillis {
					if !free(start+off, t.WindowBudgetMillis) {
						ok = false
						break
					}
				}
				if ok {
					chosen = off
				}
			}
			if chosen < 0 {
				plan.Packs = false
				plan.Failed = t.Name
				return plan, nil
			}
			for start := 0; start < hyper; start += t.PeriodMillis {
				occupy(start+chosen, t.WindowBudgetMillis)
				pl.Offsets = append(pl.Offsets, chosen)
			}
			pl.OffsetMillis = chosen
		case Jittered:
			for start := 0; start < hyper; start += t.PeriodMillis {
				placed := -1
				for off := 0; off+t.WindowBudgetMillis <= t.PeriodMillis && placed < 0; off++ {
					if free(start+off, t.WindowBudgetMillis) {
						placed = off
					}
				}
				if placed < 0 {
					plan.Packs = false
					plan.Failed = t.Name
					return plan, nil
				}
				occupy(start+placed, t.WindowBudgetMillis)
				pl.Offsets = append(pl.Offsets, placed)
			}
			pl.OffsetMillis = pl.Offsets[0]
		default:
			return nil, fmt.Errorf("sched: unknown fit mode %d", int(mode))
		}
		plan.Placements = append(plan.Placements, pl)
	}
	return plan, nil
}

// HyperperiodFit is the historical constructive feasibility check,
// kept as the explicit jittered mode: per-activation offsets are chosen
// independently, so "packs" does NOT certify a fixed-phase cyclic
// executive — use Fit(tasks, FixedPhase) for that.
func HyperperiodFit(tasks []Task) (hyperMillis int, packs bool, err error) {
	plan, err := Fit(tasks, Jittered)
	if err != nil {
		return 0, false, err
	}
	return plan.HyperMillis, plan.Packs, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
