// Package sched provides the scheduling-analysis half of timing V&V:
// §I of the paper frames the process as deriving "a timing bound for
// each software unit together with a scheduling of those software units
// so that system's timing requirements are fulfilled". Given per-task
// WCET bounds — deterministic (MOET + margin) or probabilistic (pWCET
// at the criticality-appropriate exceedance) — and the cyclic partition
// schedule, this package verifies that every activation fits its window
// and reports slack and utilisation, so the two bounding approaches can
// be compared end to end.
package sched

import (
	"fmt"
	"sort"

	"dsr/internal/mem"
)

// Task is one schedulable unit with its derived WCET bound.
type Task struct {
	Name string
	// PeriodMillis is the activation period.
	PeriodMillis int
	// WCETCycles is the bound used for analysis: a pWCET quantile for
	// MBPTA, or MOET × (1+margin) for current practice.
	WCETCycles float64
	// WindowBudgetMillis is the partition window reserved per activation.
	WindowBudgetMillis int
	// StackBoundBytes is the static worst-case stack excursion of the
	// task (analysis.StackBound.MaxStackBytes — under DSR, computed with
	// the runtime's StackOffsetBound so random offsets are covered).
	// Zero means "not analysed"; the stack check is skipped.
	StackBoundBytes int
	// StackBudgetBytes is the partition stack allocation the integrator
	// reserved for the task. Zero disables the check.
	StackBudgetBytes int
}

// Result is the verdict for one task.
type Result struct {
	Task Task
	// BudgetCycles is the window budget in cycles.
	BudgetCycles float64
	// SlackCycles is budget - WCET (negative when the task does not fit).
	SlackCycles float64
	// Fits reports WCET <= budget.
	Fits bool
	// Utilisation is WCET / period, the long-run core share.
	Utilisation float64
	// StackSlackBytes is StackBudgetBytes - StackBoundBytes when both
	// are set (negative when the static bound exceeds the allocation).
	StackSlackBytes int
	// StackFits reports whether the static stack bound fits the budget
	// (vacuously true when either side is zero/unchecked).
	StackFits bool
}

// Report is the system-level outcome.
type Report struct {
	Results []Result
	// TotalUtilisation sums the per-task utilisations.
	TotalUtilisation float64
	// Schedulable is true when every task fits its window and the total
	// utilisation is below one.
	Schedulable bool
}

// Check analyses the task set on a core running cyclesPerMilli cycles
// per millisecond.
func Check(tasks []Task, cyclesPerMilli mem.Cycles) (*Report, error) {
	if cyclesPerMilli == 0 {
		return nil, fmt.Errorf("sched: zero clock rate")
	}
	rep := &Report{Schedulable: true}
	for _, t := range tasks {
		if t.PeriodMillis <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive period", t.Name)
		}
		if t.WindowBudgetMillis <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive window", t.Name)
		}
		if t.WindowBudgetMillis > t.PeriodMillis {
			return nil, fmt.Errorf("sched: task %q window %dms exceeds period %dms",
				t.Name, t.WindowBudgetMillis, t.PeriodMillis)
		}
		if t.WCETCycles <= 0 {
			return nil, fmt.Errorf("sched: task %q has non-positive WCET bound", t.Name)
		}
		if t.StackBoundBytes < 0 || t.StackBudgetBytes < 0 {
			return nil, fmt.Errorf("sched: task %q has a negative stack bound or budget", t.Name)
		}
		budget := float64(t.WindowBudgetMillis) * float64(cyclesPerMilli)
		period := float64(t.PeriodMillis) * float64(cyclesPerMilli)
		r := Result{
			Task:         t,
			BudgetCycles: budget,
			SlackCycles:  budget - t.WCETCycles,
			Fits:         t.WCETCycles <= budget,
			Utilisation:  t.WCETCycles / period,
			StackFits:    true,
		}
		if t.StackBudgetBytes > 0 && t.StackBoundBytes > 0 {
			r.StackSlackBytes = t.StackBudgetBytes - t.StackBoundBytes
			r.StackFits = t.StackBoundBytes <= t.StackBudgetBytes
		}
		rep.Results = append(rep.Results, r)
		rep.TotalUtilisation += r.Utilisation
		if !r.Fits || !r.StackFits {
			rep.Schedulable = false
		}
	}
	if rep.TotalUtilisation > 1 {
		rep.Schedulable = false
	}
	return rep, nil
}

// MinWindow returns the smallest integer window budget (in ms) that fits
// the bound — the dimensioning question a system integrator asks, and
// where a tighter pWCET directly buys schedulable capacity.
func MinWindow(wcetCycles float64, cyclesPerMilli mem.Cycles) int {
	if wcetCycles <= 0 {
		return 0
	}
	cpm := float64(cyclesPerMilli)
	w := int(wcetCycles / cpm)
	if float64(w)*cpm < wcetCycles {
		w++
	}
	return w
}

// HyperperiodFit lays the tasks into one hyperperiod (lcm of periods)
// first-fit by period (rate-monotonic order) and reports whether the
// windows pack: a constructive cyclic-executive feasibility check.
func HyperperiodFit(tasks []Task) (hyperMillis int, packs bool, err error) {
	if len(tasks) == 0 {
		return 0, true, nil
	}
	hyper := 1
	for _, t := range tasks {
		if t.PeriodMillis <= 0 {
			return 0, false, fmt.Errorf("sched: task %q has non-positive period", t.Name)
		}
		hyper = lcm(hyper, t.PeriodMillis)
		if hyper > 1<<20 {
			return 0, false, fmt.Errorf("sched: hyperperiod overflow")
		}
	}
	// Busy map at millisecond granularity.
	busy := make([]bool, hyper)
	order := append([]Task(nil), tasks...)
	sort.Slice(order, func(i, j int) bool { return order[i].PeriodMillis < order[j].PeriodMillis })
	for _, t := range order {
		for start := 0; start < hyper; start += t.PeriodMillis {
			placed := false
			for off := 0; off+t.WindowBudgetMillis <= t.PeriodMillis && !placed; off++ {
				free := true
				for m := 0; m < t.WindowBudgetMillis; m++ {
					if busy[start+off+m] {
						free = false
						break
					}
				}
				if free {
					for m := 0; m < t.WindowBudgetMillis; m++ {
						busy[start+off+m] = true
					}
					placed = true
				}
			}
			if !placed {
				return hyper, false, nil
			}
		}
	}
	return hyper, true, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
