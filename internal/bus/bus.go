// Package bus models the AMBA AHB processor bus of the LEON3 platform
// (Fig. 1): IL1 and DL1 misses are propagated over the bus to the shared
// L2. In the paper's single-core configuration the bus adds a fixed
// arbitration + transfer latency per transaction; the model nevertheless
// counts transactions per initiator so that the future-work multicore
// contention study (§VII) has a place to attach.
package bus

import (
	"fmt"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

// Config describes the bus latency model.
type Config struct {
	Name string
	// ReadLatency and WriteLatency are added to every transaction before
	// the downstream device's own latency.
	ReadLatency  mem.Cycles
	WriteLatency mem.Cycles
}

// Counters are the bus performance events.
type Counters struct {
	Reads  uint64
	Writes uint64
	// Interfered counts transactions delayed by the modelled co-runner.
	Interfered uint64
	// InterferenceCycles is the total delay injected by the co-runner.
	InterferenceCycles uint64
}

// ContentionMode selects how multicore bus interference is modelled —
// the paper's future work item (ii), "dealing with COTS multicore
// contention-related jitter".
type ContentionMode int

const (
	// NoContention is the paper's single-core configuration.
	NoContention ContentionMode = iota
	// RandomContention injects a random arbitration delay per
	// transaction, as a time-randomised arbiter (or an MBPTA-compliant
	// co-runner model) would: the delay is another i.i.d.-able jitter
	// source, so MBPTA still applies.
	RandomContention
	// WorstCaseContention charges the maximum delay on every
	// transaction — the "force the resource to its worst latency"
	// analysis-time treatment of §II for resources not randomised.
	WorstCaseContention
)

func (m ContentionMode) String() string {
	switch m {
	case RandomContention:
		return "random"
	case WorstCaseContention:
		return "worst-case"
	default:
		return "none"
	}
}

// Contention parameterises the co-runner model.
type Contention struct {
	Mode ContentionMode
	// Intensity is the probability a transaction suffers interference
	// (RandomContention only).
	Intensity float64
	// MaxDelay is the worst per-transaction arbitration delay.
	MaxDelay mem.Cycles
}

// Bus forwards transactions to a downstream backend with added latency.
type Bus struct {
	cfg  Config
	next mem.Backend
	ctr  Counters

	cont Contention
	src  prng.Source
}

// New builds a bus in front of next.
func New(cfg Config, next mem.Backend) *Bus {
	if next == nil {
		panic(fmt.Sprintf("bus %q: nil downstream device", cfg.Name))
	}
	return &Bus{cfg: cfg, next: next}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// SetNext rebinds the downstream device; used to interpose telemetry
// probes after construction. Panics on nil.
func (b *Bus) SetNext(next mem.Backend) {
	if next == nil {
		panic(fmt.Sprintf("bus %q: nil downstream device", b.cfg.Name))
	}
	b.next = next
}

// Counters returns a snapshot of the transaction counters.
func (b *Bus) Counters() Counters { return b.ctr }

// ResetCounters zeroes the transaction counters.
func (b *Bus) ResetCounters() { b.ctr = Counters{} }

// SetContention installs (or clears, with Mode NoContention) the
// co-runner interference model.
func (b *Bus) SetContention(c Contention) {
	if c.Mode == RandomContention {
		if c.Intensity < 0 || c.Intensity > 1 {
			panic(fmt.Sprintf("bus %q: contention intensity %f out of [0,1]", b.cfg.Name, c.Intensity))
		}
		if b.src == nil {
			b.src = prng.NewMWC(0xB05)
		}
	}
	b.cont = c
}

// ReseedContention reseeds the interference source (per measurement run,
// like every other randomisation source).
func (b *Bus) ReseedContention(seed uint64) {
	if b.src == nil {
		b.src = prng.NewMWC(seed)
		return
	}
	b.src.Seed(seed)
}

// contend returns the co-runner delay for one transaction.
func (b *Bus) contend() mem.Cycles {
	switch b.cont.Mode {
	case RandomContention:
		if prng.Float64(b.src) >= b.cont.Intensity {
			return 0
		}
		d := mem.Cycles(prng.Intn(b.src, int(b.cont.MaxDelay))) + 1
		b.ctr.Interfered++
		b.ctr.InterferenceCycles += uint64(d)
		return d
	case WorstCaseContention:
		b.ctr.Interfered++
		b.ctr.InterferenceCycles += uint64(b.cont.MaxDelay)
		return b.cont.MaxDelay
	default:
		return 0
	}
}

// Read implements mem.Backend.
func (b *Bus) Read(addr mem.Addr, size int) mem.Cycles {
	b.ctr.Reads++
	return b.cfg.ReadLatency + b.contend() + b.next.Read(addr, size)
}

// Write implements mem.Backend.
func (b *Bus) Write(addr mem.Addr, size int) mem.Cycles {
	b.ctr.Writes++
	return b.cfg.WriteLatency + b.contend() + b.next.Write(addr, size)
}
