package bus

import (
	"testing"

	"dsr/internal/mem"
)

type dev struct{ lat mem.Cycles }

func (d dev) Read(a mem.Addr, size int) mem.Cycles  { return d.lat }
func (d dev) Write(a mem.Addr, size int) mem.Cycles { return d.lat }

func TestLatencyAddition(t *testing.T) {
	b := New(Config{Name: "ahb", ReadLatency: 2, WriteLatency: 3}, dev{lat: 10})
	if got := b.Read(0, 4); got != 12 {
		t.Errorf("read latency=%d, want 12", got)
	}
	if got := b.Write(0, 4); got != 13 {
		t.Errorf("write latency=%d, want 13", got)
	}
	ctr := b.Counters()
	if ctr.Reads != 1 || ctr.Writes != 1 {
		t.Errorf("counters=%+v", ctr)
	}
	b.ResetCounters()
	if b.Counters() != (Counters{}) {
		t.Error("ResetCounters did not zero")
	}
}

func TestNilDownstreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil downstream did not panic")
		}
	}()
	New(Config{Name: "x"}, nil)
}

func TestRandomContention(t *testing.T) {
	b := New(Config{Name: "ahb", ReadLatency: 2}, dev{lat: 10})
	b.SetContention(Contention{Mode: RandomContention, Intensity: 0.5, MaxDelay: 8})
	b.ReseedContention(1)
	var total mem.Cycles
	for i := 0; i < 1000; i++ {
		total += b.Read(0, 4)
	}
	ctr := b.Counters()
	if ctr.Interfered == 0 || ctr.Interfered == 1000 {
		t.Errorf("interfered=%d, want roughly half", ctr.Interfered)
	}
	if ctr.Interfered < 350 || ctr.Interfered > 650 {
		t.Errorf("interfered=%d, want ≈500", ctr.Interfered)
	}
	if total != mem.Cycles(1000*12)+mem.Cycles(ctr.InterferenceCycles) {
		t.Error("interference cycles not accounted")
	}
	// Delays stay within [1, MaxDelay].
	if avg := float64(ctr.InterferenceCycles) / float64(ctr.Interfered); avg < 1 || avg > 8 {
		t.Errorf("avg delay %f out of [1,8]", avg)
	}
}

func TestWorstCaseContention(t *testing.T) {
	b := New(Config{Name: "ahb", ReadLatency: 2}, dev{lat: 10})
	b.SetContention(Contention{Mode: WorstCaseContention, MaxDelay: 7})
	for i := 0; i < 10; i++ {
		if got := b.Read(0, 4); got != 2+7+10 {
			t.Fatalf("worst-case read latency=%d, want 19", got)
		}
	}
	if b.Counters().Interfered != 10 {
		t.Error("interference count")
	}
}

func TestContentionOffByDefault(t *testing.T) {
	b := New(Config{Name: "ahb", ReadLatency: 2}, dev{lat: 10})
	if got := b.Read(0, 4); got != 12 {
		t.Errorf("uncontended read=%d, want 12", got)
	}
	if b.Counters().Interfered != 0 {
		t.Error("phantom interference")
	}
}

func TestContentionDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) mem.Cycles {
		b := New(Config{Name: "ahb", ReadLatency: 2}, dev{lat: 10})
		b.SetContention(Contention{Mode: RandomContention, Intensity: 0.3, MaxDelay: 5})
		b.ReseedContention(seed)
		var total mem.Cycles
		for i := 0; i < 200; i++ {
			total += b.Read(0, 4)
		}
		return total
	}
	if run(5) != run(5) {
		t.Error("same seed diverged")
	}
	if run(5) == run(6) {
		t.Error("different seeds agree exactly (suspicious)")
	}
}

func TestContentionValidation(t *testing.T) {
	b := New(Config{Name: "ahb"}, dev{})
	defer func() {
		if recover() == nil {
			t.Fatal("bad intensity accepted")
		}
	}()
	b.SetContention(Contention{Mode: RandomContention, Intensity: 1.5, MaxDelay: 4})
}

func TestContentionModeString(t *testing.T) {
	if NoContention.String() != "none" || RandomContention.String() != "random" ||
		WorstCaseContention.String() != "worst-case" {
		t.Error("mode strings")
	}
}
