// Package analysis is the static-analysis and lint layer of the
// toolchain. The paper's argument — that measurement-based timing
// analysis (MBPTA) can stand in for static timing analysis — holds only
// if the DSR transformation itself is provably well-formed: a
// miscompiled indirection or an unpaired stack offset silently breaks
// the i.i.d. premise without breaking the program visibly. Following
// Doychev & Köpf's position that static analysis is the right tool to
// certify a countermeasure's memory behaviour, this package provides:
//
//   - CFG construction over isa.Instr sequences with dominators, loop
//     detection, reachability and a register liveness analysis
//     (unreachable-code and dead-store reporting);
//
//   - an interprocedural call-graph analysis computing worst-case call
//     depth, maximum stack depth and a static register-window spill
//     bound (feeding internal/sched partition stack budgets);
//
//   - a pluggable lint-pass framework (Pass + Diagnostic with severity
//     and instruction/source location) with passes for reserved-register
//     misuse (%g6/%g7, which the DSR dispatch clobbers), return-shape
//     violations, misaligned memory operands and stack-frame convention
//     violations;
//
//   - a differential verifier for the DSR compiler pass (verify.go)
//     checking every core.Transform output invariant; and
//
//   - a static L2 conflict lint (l2lint.go) that reuses
//     internal/layout.Conflicts to flag deterministic layouts with
//     pathological direct-mapped overlap — the paper's "bad and rare
//     cache layout", surfaced at compile time.
package analysis

import (
	"fmt"
	"sort"

	"dsr/internal/prog"
)

// Severity ranks a diagnostic.
type Severity int

// Severity levels. Error-level diagnostics make dsrlint exit non-zero
// and make the DSR verifier reject a transformation.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one finding, located at an instruction of a function.
type Diagnostic struct {
	Pass string
	Sev  Severity
	// Fn is the function (or data object) the finding is about; may be
	// empty for whole-program findings.
	Fn string
	// Index is the instruction index inside Fn, or -1 when the finding
	// is not tied to one instruction.
	Index int
	// Line is the source line when the program came from the assembler
	// (0 when unknown).
	Line int
	Msg  string
}

func (d Diagnostic) String() string {
	loc := ""
	switch {
	case d.Fn != "" && d.Index >= 0 && d.Line > 0:
		loc = fmt.Sprintf(" %s+%d (line %d)", d.Fn, d.Index, d.Line)
	case d.Fn != "" && d.Index >= 0:
		loc = fmt.Sprintf(" %s+%d", d.Fn, d.Index)
	case d.Fn != "":
		loc = " " + d.Fn
	}
	return fmt.Sprintf("%s: [%s]%s: %s", d.Sev, d.Pass, loc, d.Msg)
}

// LineResolver maps (function, instruction index) to a source line.
// asm.SourceInfo.InstrLine satisfies it; a nil resolver is allowed.
type LineResolver func(fn string, index int) (line int, ok bool)

// MaxSeverity returns the highest severity present (Info for none).
func MaxSeverity(ds []Diagnostic) Severity {
	max := Info
	for _, d := range ds {
		if d.Sev > max {
			max = d.Sev
		}
	}
	return max
}

// HasErrors reports whether any diagnostic is Error-level.
func HasErrors(ds []Diagnostic) bool { return len(Errors(ds)) > 0 }

// Errors filters the Error-level diagnostics.
func Errors(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Sev == Error {
			out = append(out, d)
		}
	}
	return out
}

// Context is the state shared by passes during one Run.
type Context struct {
	Prog  *prog.Program
	Lines LineResolver // may be nil
	diags []Diagnostic
	pass  string
}

// Diagf records a finding at (fn, index) for the running pass.
func (c *Context) Diagf(sev Severity, fn string, index int, format string, args ...interface{}) {
	d := Diagnostic{Pass: c.pass, Sev: sev, Fn: fn, Index: index, Msg: fmt.Sprintf(format, args...)}
	if c.Lines != nil && fn != "" && index >= 0 {
		if line, ok := c.Lines(fn, index); ok {
			d.Line = line
		}
	}
	c.diags = append(c.diags, d)
}

// Pass is one lint pass. Run inspects ctx.Prog and records findings
// through ctx.Diagf.
type Pass struct {
	Name string
	Doc  string
	Run  func(ctx *Context)
}

// DefaultPasses returns the standard lint pipeline in execution order.
func DefaultPasses() []*Pass {
	return []*Pass{
		SymbolsPass(),
		ReservedRegPass(),
		RetShapePass(),
		AlignmentPass(),
		FramePass(),
		UnreachablePass(),
		DeadStorePass(),
	}
}

// Run executes the passes over p. The program does not need to pass
// prog.Validate first — passes must tolerate malformed input — but
// callers typically validate first and lint second. Diagnostics are
// returned sorted by (function, index, pass).
func Run(p *prog.Program, passes []*Pass, lines LineResolver) []Diagnostic {
	ctx := &Context{Prog: p, Lines: lines}
	for _, ps := range passes {
		ctx.pass = ps.Name
		ps.Run(ctx)
	}
	sort.SliceStable(ctx.diags, func(i, j int) bool {
		a, b := ctx.diags[i], ctx.diags[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Pass < b.Pass
	})
	return ctx.diags
}
