package analysis

import (
	"fmt"

	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// CallResolver maps an indirect-call instruction (function f, index i)
// to its statically known callee, when the call site has a recognisable
// shape. Direct calls are resolved without it; a nil resolver leaves
// indirect calls unresolved (reported, not followed).
type CallResolver func(f *prog.Function, i int) (callee string, ok bool)

// ResolveDispatch returns a CallResolver for DSR-transformed programs:
// a CallR preceded by the canonical two-instruction table load
// (set __dsr_ftable, %g6; ld [%g6+4k], %g6) resolves to info.Funcs[k].
func ResolveDispatch(info TransformInfo) CallResolver {
	return func(f *prog.Function, i int) (string, bool) {
		if i < 2 || f.Code[i].Op != isa.CallR {
			return "", false
		}
		set, ld := &f.Code[i-2], &f.Code[i-1]
		if set.Op != isa.Set || set.Sym != info.FTableSym || ld.Op != isa.Ld {
			return "", false
		}
		if ld.Imm%4 != 0 {
			return "", false
		}
		k := int(ld.Imm / 4)
		if k < 0 || k >= len(info.Funcs) {
			return "", false
		}
		return info.Funcs[k], true
	}
}

// CallGraph is the static caller→callee relation of a program.
type CallGraph struct {
	// Callees[f] lists the distinct resolved callees of f, in first-use
	// order.
	Callees map[string][]string
	// UnresolvedIndirect[f] counts CallR sites the resolver could not
	// attribute to a callee.
	UnresolvedIndirect map[string]int
}

// BuildCallGraph scans every function for direct calls (and, through
// resolve, recognisable indirect calls).
func BuildCallGraph(p *prog.Program, resolve CallResolver) *CallGraph {
	cg := &CallGraph{
		Callees:            map[string][]string{},
		UnresolvedIndirect: map[string]int{},
	}
	for _, f := range p.Functions {
		seen := map[string]bool{}
		for i := range f.Code {
			var callee string
			switch f.Code[i].Op {
			case isa.Call:
				callee = f.Code[i].Sym
			case isa.CallR:
				if resolve != nil {
					if c, ok := resolve(f, i); ok {
						callee = c
					}
				}
				if callee == "" {
					cg.UnresolvedIndirect[f.Name]++
					continue
				}
			default:
				continue
			}
			if !seen[callee] {
				seen[callee] = true
				cg.Callees[f.Name] = append(cg.Callees[f.Name], callee)
			}
		}
	}
	return cg
}

// StackOptions configures the interprocedural stack analysis.
type StackOptions struct {
	// NumWindows is the register-window count of the target core
	// (LEON3: 8). Zero selects 8.
	NumWindows int
	// StackOffsetBound, when analysing a DSR-transformed program, is an
	// inclusive per-frame upper bound on the random stack offset each
	// non-leaf prologue adds (core.Options.StackOffsetBound). Zero for
	// deterministic builds.
	StackOffsetBound int
	// Resolve attributes indirect calls; nil follows direct calls only.
	Resolve CallResolver
}

// StackBound is the result of the interprocedural stack analysis: safe
// static upper bounds on the run-time stack behaviour, the numbers a
// partition integrator feeds into internal/sched stack budgets.
type StackBound struct {
	// MaxWindowDepth is the maximum number of register windows in use
	// at once: nested non-leaf (SAVE-executing) frames on the worst
	// call chain, counting the entry frame.
	MaxWindowDepth int
	// MaxCallDepth is the maximum call-chain length including leaves.
	MaxCallDepth int
	// MaxStackBytes bounds the total stack excursion below the initial
	// stack pointer: the sum of frame sizes (plus the per-frame random
	// offset bound under DSR) along the worst chain.
	MaxStackBytes mem.Addr
	// WindowSpillBound is the maximum number of frames spilled to the
	// save areas at any instant: with N windows, N-1 frames are
	// resident, so max(0, MaxWindowDepth-(N-1)).
	WindowSpillBound int
	// WorstChain is one chain achieving MaxStackBytes, entry first.
	WorstChain []string
	// Unresolved counts indirect call sites not attributed to a callee;
	// when non-zero the bounds cover only the resolved graph.
	Unresolved int
}

// AnalyzeStack computes static stack bounds from p's entry point. It
// fails on recursion (direct or mutual), which has no static bound and
// which the flight-software coding standards the paper's domain uses
// forbid anyway.
func AnalyzeStack(p *prog.Program, opts StackOptions) (*StackBound, error) {
	if opts.NumWindows == 0 {
		opts.NumWindows = 8
	}
	entry := p.Function(p.Entry)
	if entry == nil {
		return nil, fmt.Errorf("analysis: entry %q not defined", p.Entry)
	}
	cg := BuildCallGraph(p, opts.Resolve)

	type result struct {
		windows int
		depth   int
		bytes   mem.Addr
		chain   []string
	}
	memo := map[string]*result{}
	onPath := map[string]bool{}

	frameBytes := func(f *prog.Function) mem.Addr {
		if f.Leaf {
			return 0
		}
		return mem.Addr(f.FrameSize) + mem.Addr(opts.StackOffsetBound)
	}

	var walk func(name string) (*result, error)
	walk = func(name string) (*result, error) {
		if r, ok := memo[name]; ok {
			return r, nil
		}
		if onPath[name] {
			return nil, fmt.Errorf("analysis: recursion through %q — stack depth is unbounded", name)
		}
		f := p.Function(name)
		if f == nil {
			// Calls to undefined symbols are prog.Validate's problem;
			// treat as a zero-cost sink so the analysis stays total.
			r := &result{chain: []string{name}}
			memo[name] = r
			return r, nil
		}
		onPath[name] = true
		defer delete(onPath, name)

		selfWindows := 0
		if !f.Leaf {
			selfWindows = 1
		}
		// Per-metric maxima over the callees; the chain follows the
		// byte-heaviest subtree.
		var maxWindows, maxDepth int
		var maxBytes mem.Addr
		var bytesChain []string
		for _, callee := range cg.Callees[name] {
			sub, err := walk(callee)
			if err != nil {
				return nil, err
			}
			if sub.windows > maxWindows {
				maxWindows = sub.windows
			}
			if sub.depth > maxDepth {
				maxDepth = sub.depth
			}
			if sub.bytes > maxBytes || bytesChain == nil {
				maxBytes = sub.bytes
				bytesChain = sub.chain
			}
		}
		r := &result{
			windows: selfWindows + maxWindows,
			depth:   1 + maxDepth,
			bytes:   frameBytes(f) + maxBytes,
			chain:   append([]string{name}, bytesChain...),
		}
		memo[name] = r
		return r, nil
	}

	r, err := walk(p.Entry)
	if err != nil {
		return nil, err
	}
	sb := &StackBound{
		MaxWindowDepth: r.windows,
		MaxCallDepth:   r.depth,
		MaxStackBytes:  r.bytes,
		WorstChain:     r.chain,
	}
	for _, n := range cg.UnresolvedIndirect {
		sb.Unresolved += n
	}
	if resident := opts.NumWindows - 1; sb.MaxWindowDepth > resident {
		sb.WindowSpillBound = sb.MaxWindowDepth - resident
	}
	return sb, nil
}
