package analysis

import (
	"strings"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

// TestAnalyzeStackRejectsMutualRecursion covers the cycle detector on a
// cycle longer than one edge: main → ping → pong → ping. Direct
// recursion is covered elsewhere; this pins the onPath bookkeeping.
func TestAnalyzeStackRejectsMutualRecursion(t *testing.T) {
	p := &prog.Program{Name: "mutual", Entry: "main"}
	ping := prog.NewFunc("ping", prog.MinFrame).Prologue().Call("pong").Epilogue().MustBuild()
	pong := prog.NewFunc("pong", prog.MinFrame).Prologue().Call("ping").Epilogue().MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).Prologue().Call("ping").Halt().MustBuild()
	for _, f := range []*prog.Function{main, ping, pong} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := AnalyzeStack(p, StackOptions{})
	if err == nil {
		t.Fatal("mutual recursion accepted; want an error")
	}
	if !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("error %q does not name recursion", err)
	}
}

// TestResolveDispatchMalformedShapes feeds the canonical-dispatch
// resolver every near-miss of the two-instruction pattern; each must be
// counted unresolved, never mis-attributed to a callee.
func TestResolveDispatchMalformedShapes(t *testing.T) {
	info := TransformInfo{FTableSym: "__dsr_ftable", OffsetsSym: "__dsr_offsets",
		Funcs: []string{"main", "callee"}}
	resolve := ResolveDispatch(info)

	callSeq := func(pre ...isa.Instr) *prog.Function {
		code := []isa.Instr{{Op: isa.Save, Imm: prog.MinFrame}}
		code = append(code, pre...)
		code = append(code, isa.Instr{Op: isa.CallR, Rs1: isa.G6}, isa.Instr{Op: isa.Ret})
		return &prog.Function{Name: "main", FrameSize: prog.MinFrame, Code: code}
	}

	cases := []struct {
		name string
		fn   *prog.Function
	}{
		{"callr at function start", &prog.Function{Name: "main", FrameSize: prog.MinFrame,
			Code: []isa.Instr{{Op: isa.CallR, Rs1: isa.G6}, {Op: isa.Ret}}}},
		{"wrong table symbol", callSeq(
			isa.Instr{Op: isa.Set, Rd: isa.G6, Sym: "not_the_table"},
			isa.Instr{Op: isa.Ld, Rd: isa.G6, Rs1: isa.G6, Imm: 4})},
		{"no load between set and call", callSeq(
			isa.Instr{Op: isa.Set, Rd: isa.G6, Sym: "__dsr_ftable"},
			isa.Instr{Op: isa.Add, Rd: isa.G6, Rs1: isa.G6, Imm: 4})},
		{"misaligned table offset", callSeq(
			isa.Instr{Op: isa.Set, Rd: isa.G6, Sym: "__dsr_ftable"},
			isa.Instr{Op: isa.Ld, Rd: isa.G6, Rs1: isa.G6, Imm: 6})},
		{"table index out of range", callSeq(
			isa.Instr{Op: isa.Set, Rd: isa.G6, Sym: "__dsr_ftable"},
			isa.Instr{Op: isa.Ld, Rd: isa.G6, Rs1: isa.G6, Imm: 4 * 99})},
		{"negative table index", callSeq(
			isa.Instr{Op: isa.Set, Rd: isa.G6, Sym: "__dsr_ftable"},
			isa.Instr{Op: isa.Ld, Rd: isa.G6, Rs1: isa.G6, Imm: -4})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			callee := &prog.Function{Name: "callee", Leaf: true, Code: []isa.Instr{{Op: isa.RetL}}}
			p := &prog.Program{Name: "t", Entry: "main"}
			p.Functions = append(p.Functions, tc.fn, callee)
			cg := BuildCallGraph(p, resolve)
			if got := cg.Callees["main"]; len(got) != 0 {
				t.Fatalf("malformed dispatch resolved to %v; must stay unresolved", got)
			}
			if cg.UnresolvedIndirect["main"] != 1 {
				t.Fatalf("unresolved=%d, want 1", cg.UnresolvedIndirect["main"])
			}
		})
	}
}

// TestBuildCallGraphDeduplicatesCallees pins first-use ordering and
// de-duplication: two calls to the same callee yield one edge.
func TestBuildCallGraphDeduplicatesCallees(t *testing.T) {
	p := &prog.Program{Name: "dup", Entry: "main"}
	leaf := prog.NewLeaf("leaf").RetLeaf().MustBuild()
	other := prog.NewLeaf("other").RetLeaf().MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Call("leaf").Call("other").Call("leaf").
		Halt().
		MustBuild()
	for _, f := range []*prog.Function{main, leaf, other} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	cg := BuildCallGraph(p, nil)
	got := cg.Callees["main"]
	if len(got) != 2 || got[0] != "leaf" || got[1] != "other" {
		t.Fatalf("callees=%v, want [leaf other]", got)
	}
}
