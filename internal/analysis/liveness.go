package analysis

import (
	"dsr/internal/isa"
)

// The liveness lattice tracks the 32 windowed integer registers plus
// the 16 FP registers as one bitset. Window rotation (save/restore/ret)
// and calls are modelled conservatively: they use every register, so
// liveness never crosses them optimistically and the dead-store report
// stays sound.
const (
	numIntRegs = int(isa.NumRegs)
	numLive    = numIntRegs + isa.NumFRegs
)

type liveSet [1]uint64 // 48 bits used

func (s *liveSet) set(r int)      { s[0] |= 1 << uint(r) }
func (s *liveSet) clear(r int)    { s[0] &^= 1 << uint(r) }
func (s *liveSet) has(r int) bool { return s[0]&(1<<uint(r)) != 0 }
func (s *liveSet) union(t liveSet) bool {
	old := s[0]
	s[0] |= t[0]
	return s[0] != old
}

func fbit(f isa.FReg) int { return numIntRegs + int(f) }

// instrEffect describes one instruction's register reads and writes.
type instrEffect struct {
	uses    []int
	defs    []int
	usesAll bool // conservative barrier: treats every register as used
	// pure means the instruction's only effect is writing its defs —
	// removing it would be semantics-preserving if the defs are dead.
	// Loads are impure here because they fault on bad addresses and
	// perturb cache state (a timing effect this simulator measures).
	pure bool
}

func effect(in *isa.Instr) instrEffect {
	var e instrEffect
	useReg := func(r isa.Reg) {
		if r != isa.G0 {
			e.uses = append(e.uses, int(r))
		}
	}
	useSrc2 := func() {
		if !in.UseImm {
			useReg(in.Rs2)
		}
	}
	defReg := func(r isa.Reg) {
		if r != isa.G0 {
			e.defs = append(e.defs, int(r))
		}
	}

	switch in.Op {
	case isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor,
		isa.Sll, isa.Srl, isa.Sra, isa.Mul, isa.Div:
		useReg(in.Rs1)
		useSrc2()
		defReg(in.Rd)
		e.pure = in.Op != isa.Div // div can trap on zero
	case isa.Cmp:
		useReg(in.Rs1)
		useSrc2()
		// defines the condition codes, which we treat as always live.
	case isa.Set:
		defReg(in.Rd)
		e.pure = true
	case isa.Mov:
		useSrc2()
		defReg(in.Rd)
		e.pure = true
	case isa.Ld, isa.Ldub:
		useReg(in.Rs1)
		defReg(in.Rd)
	case isa.St, isa.Stb:
		useReg(in.Rd)
		useReg(in.Rs1)
	case isa.FLd:
		useReg(in.Rs1)
		e.defs = append(e.defs, fbit(in.FRd))
	case isa.FSt:
		useReg(in.Rs1)
		e.uses = append(e.uses, fbit(in.FRs2))
	case isa.Fadd, isa.Fsub, isa.Fmul, isa.Fdiv:
		e.uses = append(e.uses, fbit(in.FRs1), fbit(in.FRs2))
		e.defs = append(e.defs, fbit(in.FRd))
		e.pure = in.Op != isa.Fdiv // value-dependent latency, keep
	case isa.Fsqrt, isa.Fitos, isa.Fstoi:
		e.uses = append(e.uses, fbit(in.FRs2))
		e.defs = append(e.defs, fbit(in.FRd))
	case isa.Fcmp:
		e.uses = append(e.uses, fbit(in.FRs1), fbit(in.FRs2))
	case isa.Ba, isa.Be, isa.Bne, isa.Bl, isa.Ble, isa.Bg, isa.Bge,
		isa.Fbe, isa.Fbne, isa.Fbl, isa.Fbg:
		// reads condition codes only
	case isa.Nop, isa.IPoint:
		// IPoint writes the out-of-band trace, not registers.
	default:
		// Call, CallR, Ret, RetL, Save, SaveX, Restore, Halt and anything
		// unknown: barrier. Calls pass arguments in %o registers, window
		// ops rotate the whole file, Halt exposes %o0 as the exit value.
		e.usesAll = true
	}
	return e
}

// Liveness holds per-instruction live-after sets for one function.
type Liveness struct {
	g *CFG
	// liveOut[i] is the set live immediately after instruction i.
	liveOut []liveSet
}

// ComputeLiveness runs a backward may-liveness dataflow over g.
func ComputeLiveness(g *CFG) *Liveness {
	n := len(g.Fn.Code)
	lv := &Liveness{g: g, liveOut: make([]liveSet, n)}
	if n == 0 {
		return lv
	}

	// Per-block entry sets.
	liveIn := make([]liveSet, len(g.Blocks))
	blockIn := func(b *Block) liveSet {
		// Transfer the block backwards from its out set.
		var s liveSet
		for _, succ := range b.Succs {
			s.union(liveIn[succ])
		}
		for i := b.End - 1; i >= b.Start; i-- {
			e := effect(&g.Fn.Code[i])
			for _, d := range e.defs {
				s.clear(d)
			}
			if e.usesAll {
				for r := 0; r < numLive; r++ {
					s.set(r)
				}
			}
			for _, u := range e.uses {
				s.set(u)
			}
		}
		return s
	}

	for changed := true; changed; {
		changed = false
		for bi := len(g.Blocks) - 1; bi >= 0; bi-- {
			b := g.Blocks[bi]
			if in := blockIn(b); liveIn[b.ID].union(in) {
				changed = true
			}
		}
	}

	// Final pass: record live-after per instruction.
	for _, b := range g.Blocks {
		var s liveSet
		for _, succ := range b.Succs {
			s.union(liveIn[succ])
		}
		for i := b.End - 1; i >= b.Start; i-- {
			lv.liveOut[i] = s
			e := effect(&g.Fn.Code[i])
			for _, d := range e.defs {
				s.clear(d)
			}
			if e.usesAll {
				for r := 0; r < numLive; r++ {
					s.set(r)
				}
			}
			for _, u := range e.uses {
				s.set(u)
			}
		}
	}
	return lv
}

// DeadStores returns the indices of pure instructions whose every
// destination register is dead afterwards — the classic dead-store
// report, restricted to removable instructions.
func (lv *Liveness) DeadStores() []int {
	var out []int
	for _, b := range lv.g.Blocks {
		if !lv.g.Reachable[b.ID] {
			continue // reported by the unreachable pass instead
		}
		for i := b.Start; i < b.End; i++ {
			e := effect(&lv.g.Fn.Code[i])
			if !e.pure || len(e.defs) == 0 {
				continue
			}
			dead := true
			for _, d := range e.defs {
				if lv.liveOut[i].has(d) {
					dead = false
					break
				}
			}
			if dead {
				out = append(out, i)
			}
		}
	}
	return out
}
