package cachedom

import (
	"testing"

	"dsr/internal/cache"
)

func TestMustDomainAgingAndEviction(t *testing.T) {
	// Two-way cache with 2 sets of 16-byte lines.
	dom := New(cache.Config{Size: 64, LineSize: 16, Ways: 2})
	st := MustState{}
	// Lines 0 and 2 map to set 0; line 1 maps to set 1.
	dom.MustAccess(st, 0, true)
	dom.MustAccess(st, 2, true)
	if st[2] != 0 || st[0] != 1 {
		t.Fatalf("LRU ages wrong after two installs: %v", st)
	}
	dom.MustAccess(st, 1, true) // different set: must not age set 0
	if st[0] != 1 || st[2] != 0 {
		t.Fatalf("cross-set access aged set 0: %v", st)
	}
	dom.MustAccess(st, 4, true) // set 0 again: line 0 evicted (age 2 >= 2 ways)
	if _, ok := st[0]; ok {
		t.Fatalf("line 0 must be evicted: %v", st)
	}
	if st[2] != 1 || st[4] != 0 {
		t.Fatalf("ages after eviction: %v", st)
	}
}

func TestMustDomainStoreNoAllocate(t *testing.T) {
	dom := New(cache.Config{Size: 64, LineSize: 16, Ways: 2})
	st := MustState{}
	dom.MustAccess(st, 0, false) // store miss: must NOT install
	if len(st) != 0 {
		t.Fatalf("write-through no-allocate store installed a line: %v", st)
	}
	dom.MustAccess(st, 0, true)  // load installs
	dom.MustAccess(st, 2, true)  // same set
	dom.MustAccess(st, 0, false) // store hit refreshes line 0
	if st[0] != 0 {
		t.Fatalf("store hit did not refresh LRU age: %v", st)
	}
}

func TestMustJoinIntersects(t *testing.T) {
	a := MustState{1: 0, 2: 1}
	b := MustState{2: 3, 9: 0}
	j := MustJoin(a, b)
	if len(j) != 1 || j[2] != 3 {
		t.Fatalf("join = %v; want {2:3}", j)
	}
}
