// Package cachedom is the shared Ferdinand-style abstract cache domain
// (must/may analysis) used by the static analyzers: the WCET analyzer
// (internal/analysis/wcet) consumes the always-hit classification for
// its miss-count bounds, and the leakage analyzer (internal/analysis/leak)
// consumes the per-access classification for its trace-channel counting.
//
// The *must* domain proves always-hit: it maps line addresses to an
// upper bound on their LRU age, keeping only lines guaranteed resident
// in every concrete execution reaching the program point. Join is
// intersection with age maximum. The *may* domain over-approximates the
// possible cache contents and proves always-miss (report-only — a WCET
// bound never relies on a predicted miss being cheap, since on this
// platform a miss is always the expensive outcome; the leak analyzer
// uses always-miss to fix an access's trace outcome).
//
// Soundness gates, enforced by the callers:
//
//   - deterministic layout only: under DSR the line→set mapping of every
//     object changes per run, so a per-set age argument is meaningless
//     (callers then fall back to placement-independent counting);
//   - modulo placement + LRU replacement only: the hardware-randomised
//     caches of the A4 ablation defeat both domains by design, which is
//     exactly the paper's point about hardware vs software randomisation;
//   - the data-cache domain additionally requires a window-safe program:
//     register-window spill/fill traps issue stores and loads that the
//     access plan cannot see.
//
// Transfer functions follow the platform's policies: the DL1 is
// write-through no-allocate, so a store never installs a line, but a
// store *hit* refreshes the line's LRU age — the analysis conservatively
// ages all other same-set lines on every known store, and treats
// unknown-address accesses as ageing every tracked line by one (a single
// access perturbs at most one set by at most one step, so this is a
// superset of every concrete behaviour). Calls clear the domain: the
// callee's cache footprint is handled interprocedurally by the callers
// (persistence analysis in wcet, per-site counting in leak), not here.
package cachedom

import (
	"dsr/internal/analysis"
	"dsr/internal/cache"
	"dsr/internal/mem"
)

// Dom is the abstract-domain geometry of one cache.
type Dom struct {
	LineSz mem.Addr
	NSets  mem.Addr
	NWays  int
}

// New derives the domain geometry from a cache configuration.
func New(cfg cache.Config) *Dom {
	return &Dom{
		LineSz: mem.Addr(cfg.LineSize),
		NSets:  mem.Addr(cfg.Sets()),
		NWays:  cfg.Ways,
	}
}

// LineOf returns the line address (addr / lineSize) of a byte address.
func (c *Dom) LineOf(a mem.Addr) mem.Addr { return a / c.LineSz }

// SetOf returns the modulo set index of a line address.
func (c *Dom) SetOf(line mem.Addr) mem.Addr { return line % c.NSets }

// MustState maps resident line address -> maximum LRU age (0 = MRU).
// Absent means "not guaranteed resident".
type MustState map[mem.Addr]int

// CopyMust deep-copies a must state.
func CopyMust(s MustState) MustState {
	n := make(MustState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// MustJoin intersects a and b with age maximum (into a fresh state).
func MustJoin(a, b MustState) MustState {
	n := MustState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb > va {
				va = vb
			}
			n[k] = va
		}
	}
	return n
}

// MustEqual reports whether two must states are identical.
func MustEqual(a, b MustState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || vb != va {
			return false
		}
	}
	return true
}

// MustAccess applies a known-address access. install=true for reads
// (the line is resident afterwards); install=false for stores on the
// write-through no-allocate DL1, where residency is only refreshed if
// the line was already resident.
func (c *Dom) MustAccess(st MustState, line mem.Addr, install bool) {
	prevAge, present := st[line]
	s := c.SetOf(line)
	for l, age := range st {
		if l == line || c.SetOf(l) != s {
			continue
		}
		if !present || age < prevAge || !install {
			// The accessed line moves to the front; lines younger than
			// its previous age (or every same-set line, when we cannot
			// bound that age) slip one step towards eviction.
			age++
			if age >= c.NWays {
				delete(st, l)
			} else {
				st[l] = age
			}
		}
	}
	if install || present {
		st[line] = 0
	}
}

// MustUnknown applies an access with statically unknown address: every
// tracked line may have aged one step.
func (c *Dom) MustUnknown(st MustState) {
	for l, age := range st {
		age++
		if age >= c.NWays {
			delete(st, l)
		} else {
			st[l] = age
		}
	}
}

// MayState over-approximates the possible cache contents.
type MayState struct {
	Lines  map[mem.Addr]bool
	AllTop bool // any line may be resident
}

// NewMay returns an empty may state.
func NewMay() *MayState { return &MayState{Lines: map[mem.Addr]bool{}} }

// Copy deep-copies a may state.
func (m *MayState) Copy() *MayState {
	n := &MayState{Lines: make(map[mem.Addr]bool, len(m.Lines)), AllTop: m.AllTop}
	for k := range m.Lines {
		n.Lines[k] = true
	}
	return n
}

// Join unions b into m, reporting change.
func (m *MayState) Join(b *MayState) bool {
	changed := false
	if b.AllTop && !m.AllTop {
		m.AllTop = true
		changed = true
	}
	for k := range b.Lines {
		if !m.Lines[k] {
			m.Lines[k] = true
			changed = true
		}
	}
	return changed
}

// Access applies a known-address access to the may state.
func (m *MayState) Access(line mem.Addr, install bool) {
	if install {
		m.Lines[line] = true
	}
}

// Unknown applies an unknown-address access to the may state.
func (m *MayState) Unknown(install bool) {
	if install {
		m.AllTop = true
	}
}

// Contains reports whether line may be resident.
func (m *MayState) Contains(line mem.Addr) bool {
	return m.AllTop || m.Lines[line]
}

// AccessInfo is the per-instruction data-access summary handed to the
// domain by the address analysis.
type AccessInfo struct {
	Load  bool // Ld/Ldub/FLd
	Store bool // St/Stb/FSt
	// LineKnown marks a deterministic-layout access whose entire byte
	// range falls inside one cache line of the *data* cache.
	LineKnown bool
	Line      mem.Addr
}

// AccessPlan is the full memory behaviour of one function under a
// deterministic layout.
type AccessPlan struct {
	// FetchLine[i] is the IL1 line of instruction i's fetch address.
	FetchLine []mem.Addr
	// Data[i] summarises instruction i's data access (zero value: none).
	Data []AccessInfo
	// Call[i] marks a Call/CallR at i (clears both domains).
	Call []bool
}

// Class is the per-access outcome proven by the fixpoint.
type Class uint8

const (
	// ClassUnknown: neither always-hit nor always-miss was proven.
	ClassUnknown Class = iota
	// ClassHit: the access hits in every execution reaching it.
	ClassHit
	// ClassMiss: the access misses in every execution reaching it
	// (relative to the function's own entry; report-only for WCET).
	ClassMiss
)

// Classification is the outcome of the must/may fixpoint.
type Classification struct {
	// FetchHit[i]: instruction i's fetch is an always-hit in the IL1.
	FetchHit []bool
	// LoadHit[i]: instruction i's data load is an always-hit in the DL1.
	LoadHit []bool
	// FetchClass[i] / DataClass[i] record the full per-access outcome
	// (hit / miss / unknown) for the leakage analyzer's trace channel.
	FetchClass []Class
	DataClass  []Class

	AlwaysHit     int
	AlwaysMiss    int
	NotClassified int
}

// Classify runs the must and may fixpoints over g for the instruction
// and data caches (independently gated by doIL1/doDL1) and re-walks the
// converged states to classify every access site.
func Classify(g *analysis.CFG, plan *AccessPlan, il1, dl1 *Dom, doIL1, doDL1 bool) *Classification {
	n := len(plan.Data)
	cl := &Classification{
		FetchHit: make([]bool, n), LoadHit: make([]bool, n),
		FetchClass: make([]Class, n), DataClass: make([]Class, n),
	}
	if !doIL1 && !doDL1 {
		for b := range g.Blocks {
			if !g.Reachable[b] {
				continue
			}
			for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
				cl.NotClassified++ // fetch
				if plan.Data[i].Load || plan.Data[i].Store {
					cl.NotClassified++
				}
			}
		}
		return cl
	}

	nb := len(g.Blocks)
	type domState struct {
		mustI, mustD MustState
		mayI, mayD   *MayState
	}
	in := make([]*domState, nb)
	seen := make([]bool, nb)
	// Entry convention: cold cache — must empty (proves nothing extra),
	// may empty (per-function always-miss classification is relative to
	// the function's own entry; documented report-only).
	in[0] = &domState{mustI: MustState{}, mustD: MustState{}, mayI: NewMay(), mayD: NewMay()}
	seen[0] = true

	// step applies instruction i to st.
	step := func(i int, st *domState) {
		if doIL1 {
			il1.MustAccess(st.mustI, plan.FetchLine[i], true)
			st.mayI.Access(plan.FetchLine[i], true)
		}
		if doDL1 {
			d := plan.Data[i]
			switch {
			case !d.Load && !d.Store:
			case d.LineKnown:
				dl1.MustAccess(st.mustD, d.Line, d.Load)
				st.mayD.Access(d.Line, d.Load)
			default:
				dl1.MustUnknown(st.mustD)
				st.mayD.Unknown(d.Load)
			}
		}
		if plan.Call[i] {
			// The callee's accesses are invisible here; drop everything.
			st.mustI = MustState{}
			st.mustD = MustState{}
			st.mayI.AllTop = true
			st.mayD.AllTop = true
		}
	}

	work := []int{0}
	inWork := make([]bool, nb)
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		st := &domState{
			mustI: CopyMust(in[b].mustI), mustD: CopyMust(in[b].mustD),
			mayI: in[b].mayI.Copy(), mayD: in[b].mayD.Copy(),
		}
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			step(i, st)
		}
		for _, s := range g.Blocks[b].Succs {
			changed := false
			if !seen[s] {
				in[s] = &domState{
					mustI: CopyMust(st.mustI), mustD: CopyMust(st.mustD),
					mayI: st.mayI.Copy(), mayD: st.mayD.Copy(),
				}
				seen[s] = true
				changed = true
			} else {
				if ni := MustJoin(in[s].mustI, st.mustI); !MustEqual(ni, in[s].mustI) {
					in[s].mustI = ni
					changed = true
				}
				if nd := MustJoin(in[s].mustD, st.mustD); !MustEqual(nd, in[s].mustD) {
					in[s].mustD = nd
					changed = true
				}
				if in[s].mayI.Join(st.mayI) {
					changed = true
				}
				if in[s].mayD.Join(st.mayD) {
					changed = true
				}
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}

	// Classification re-walk from the converged entry states.
	for b := range g.Blocks {
		if !g.Reachable[b] || !seen[b] {
			continue
		}
		st := &domState{
			mustI: CopyMust(in[b].mustI), mustD: CopyMust(in[b].mustD),
			mayI: in[b].mayI.Copy(), mayD: in[b].mayD.Copy(),
		}
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			if doIL1 {
				switch {
				case st.mustI[plan.FetchLine[i]] < il1.NWays && hasKey(st.mustI, plan.FetchLine[i]):
					cl.FetchHit[i] = true
					cl.FetchClass[i] = ClassHit
					cl.AlwaysHit++
				case !st.mayI.Contains(plan.FetchLine[i]):
					cl.FetchClass[i] = ClassMiss
					cl.AlwaysMiss++
				default:
					cl.NotClassified++
				}
			} else {
				cl.NotClassified++
			}
			d := plan.Data[i]
			if d.Load || d.Store {
				switch {
				case !doDL1:
					cl.NotClassified++
				case d.LineKnown && hasKey(st.mustD, d.Line):
					if d.Load {
						cl.LoadHit[i] = true
					}
					cl.DataClass[i] = ClassHit
					cl.AlwaysHit++
				case d.LineKnown && !st.mayD.Contains(d.Line):
					cl.DataClass[i] = ClassMiss
					cl.AlwaysMiss++
				default:
					cl.NotClassified++
				}
			}
			step(i, st)
		}
	}
	return cl
}

func hasKey(s MustState, k mem.Addr) bool {
	_, ok := s[k]
	return ok
}
