package analysis

import (
	"dsr/internal/isa"
	"dsr/internal/prog"
)

// Block is one basic block: instructions [Start, End) of a function.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// CFG is the control-flow graph of one function. Block 0 is the entry.
type CFG struct {
	Fn     *prog.Function
	Blocks []*Block
	// blockOf[i] is the block containing instruction i.
	blockOf []int
	// Reachable[b] reports whether block b is reachable from the entry.
	Reachable []bool
	// IDom[b] is the immediate dominator of block b (-1 for the entry
	// and for unreachable blocks).
	IDom []int
	// LoopHeads[b] reports whether block b is the header of a natural
	// loop (the target of a back edge).
	LoopHeads []bool
	// BackEdges lists the (tail, head) back edges found.
	BackEdges [][2]int
}

// isTerminator reports whether op never falls through.
func isTerminator(op isa.Op) bool {
	switch op {
	case isa.Ba, isa.Ret, isa.RetL, isa.Halt:
		return true
	}
	return false
}

// branchTarget returns the in-function instruction index targeted by a
// branch at index i, clamped validity via ok.
func branchTarget(f *prog.Function, i int) (int, bool) {
	tgt := i + int(f.Code[i].Disp)
	if tgt < 0 || tgt >= len(f.Code) {
		return 0, false
	}
	return tgt, true
}

// BuildCFG partitions f into basic blocks and computes reachability,
// dominators and loop headers. It never panics on malformed input:
// out-of-range branch targets simply contribute no edge (prog.Validate
// reports those separately).
func BuildCFG(f *prog.Function) *CFG {
	n := len(f.Code)
	g := &CFG{Fn: f}
	if n == 0 {
		return g
	}

	// Leaders: entry, branch targets, instruction after any control
	// transfer that does not always fall through.
	leader := make([]bool, n)
	leader[0] = true
	for i := 0; i < n; i++ {
		op := f.Code[i].Op
		if op.IsBranch() {
			if tgt, ok := branchTarget(f, i); ok {
				leader[tgt] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		} else if isTerminator(op) && i+1 < n {
			leader[i+1] = true
		}
	}

	g.blockOf = make([]int, n)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i}
			for j := start; j < i; j++ {
				g.blockOf[j] = b.ID
			}
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}

	// Edges.
	for _, b := range g.Blocks {
		last := b.End - 1
		op := f.Code[last].Op
		addEdge := func(to int) {
			b.Succs = append(b.Succs, to)
			g.Blocks[to].Preds = append(g.Blocks[to].Preds, b.ID)
		}
		switch {
		case op.IsBranch():
			if tgt, ok := branchTarget(f, last); ok {
				addEdge(g.blockOf[tgt])
			}
			if op != isa.Ba && b.End < n {
				addEdge(g.blockOf[b.End])
			}
		case isTerminator(op):
			// no successors
		default:
			if b.End < n {
				addEdge(g.blockOf[b.End])
			}
		}
	}

	g.computeReachable()
	g.computeDominators()
	g.findLoops()
	return g
}

// BlockOf returns the block ID containing instruction index i.
func (g *CFG) BlockOf(i int) int { return g.blockOf[i] }

func (g *CFG) computeReachable() {
	g.Reachable = make([]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return
	}
	stack := []int{0}
	g.Reachable[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !g.Reachable[s] {
				g.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
}

// computeDominators runs the classic iterative dominator algorithm
// (Cooper, Harvey & Kennedy) over the reachable subgraph in reverse
// post-order.
func (g *CFG) computeDominators() {
	nb := len(g.Blocks)
	g.IDom = make([]int, nb)
	for i := range g.IDom {
		g.IDom[i] = -1
	}
	if nb == 0 {
		return
	}

	// Reverse post-order of the reachable subgraph.
	order := make([]int, 0, nb)
	seen := make([]bool, nb)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	// order is post-order; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, nb)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = g.IDom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = g.IDom[b]
			}
		}
		return a
	}

	g.IDom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if rpoNum[p] < 0 || g.IDom[p] < 0 {
					continue // unreachable or unprocessed predecessor
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && g.IDom[b] != newIdom {
				g.IDom[b] = newIdom
				changed = true
			}
		}
	}
	g.IDom[0] = -1 // entry has no immediate dominator
}

// Dominates reports whether block a dominates block b (both reachable).
func (g *CFG) Dominates(a, b int) bool {
	if !g.Reachable[a] || !g.Reachable[b] {
		return false
	}
	for b != a {
		if b == 0 || g.IDom[b] < 0 {
			return false
		}
		b = g.IDom[b]
	}
	return true
}

// findLoops marks back edges (tail → head where head dominates tail)
// and their headers — the natural-loop detection used by the lint layer
// to report loop structure.
func (g *CFG) findLoops() {
	g.LoopHeads = make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		if !g.Reachable[b.ID] {
			continue
		}
		for _, s := range b.Succs {
			if g.Dominates(s, b.ID) {
				g.LoopHeads[s] = true
				g.BackEdges = append(g.BackEdges, [2]int{b.ID, s})
			}
		}
	}
}

// NumLoops returns the number of natural-loop headers.
func (g *CFG) NumLoops() int {
	n := 0
	for _, h := range g.LoopHeads {
		if h {
			n++
		}
	}
	return n
}

// UnreachableInstrs lists instruction indices in blocks not reachable
// from the entry.
func (g *CFG) UnreachableInstrs() []int {
	var out []int
	for _, b := range g.Blocks {
		if g.Reachable[b.ID] {
			continue
		}
		for i := b.Start; i < b.End; i++ {
			out = append(out, i)
		}
	}
	return out
}
