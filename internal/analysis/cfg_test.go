package analysis

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

// loopFn builds a leaf with one counted loop:
//
//	0: mov  l0, 0
//	1: addi l0, l0, 1   <- loop head
//	2: cmpi l0, 10
//	3: bl   -2
//	4: retl
func loopFn(t *testing.T) *prog.Function {
	t.Helper()
	f := prog.NewLeaf("loop").
		MovI(isa.L0, 0).
		Label("head").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 10).
		Bl("head").
		RetLeaf().
		MustBuild()
	return f
}

func TestBuildCFGBlocksAndEdges(t *testing.T) {
	g := BuildCFG(loopFn(t))
	// Blocks: [0,1) preamble, [1,4) loop body+test+branch, [4,5) exit.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks=%d, want 3", len(g.Blocks))
	}
	body := g.Blocks[g.BlockOf(1)]
	if body.Start != 1 || body.End != 4 {
		t.Errorf("loop body block spans [%d,%d), want [1,4)", body.Start, body.End)
	}
	// The branch block has two successors: itself (back edge) and the exit.
	if len(body.Succs) != 2 {
		t.Errorf("body succs=%v, want 2 edges", body.Succs)
	}
	for _, b := range g.Blocks {
		if !g.Reachable[b.ID] {
			t.Errorf("block %d unreachable in a straight-line loop", b.ID)
		}
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	g := BuildCFG(loopFn(t))
	entry := g.BlockOf(0)
	body := g.BlockOf(1)
	exit := g.BlockOf(4)
	if !g.Dominates(entry, body) || !g.Dominates(entry, exit) {
		t.Error("entry does not dominate the rest of the function")
	}
	if !g.Dominates(body, exit) {
		t.Error("the single loop body must dominate the exit")
	}
	if g.Dominates(exit, body) {
		t.Error("exit cannot dominate the loop body")
	}
	if g.NumLoops() != 1 {
		t.Errorf("loops=%d, want 1", g.NumLoops())
	}
	if len(g.BackEdges) != 1 || g.BackEdges[0] != [2]int{body, body} {
		t.Errorf("back edges=%v, want one self edge on block %d", g.BackEdges, body)
	}
	if !g.LoopHeads[body] {
		t.Error("loop body not marked as a loop head")
	}
}

func TestDiamondDominators(t *testing.T) {
	// if/else diamond: entry → then|else → join.
	f := prog.NewLeaf("diamond").
		CmpI(isa.O0, 0).
		Be("else").
		AddI(isa.O0, isa.O0, 1).
		Ba("join").
		Label("else").
		SubI(isa.O0, isa.O0, 1).
		Label("join").
		RetLeaf().
		MustBuild()
	g := BuildCFG(f)
	entry := g.BlockOf(0)
	join := g.BlockOf(len(f.Code) - 1)
	thenB := g.BlockOf(2)
	elseB := g.BlockOf(4)
	if got := g.IDom[join]; got != entry {
		t.Errorf("idom(join)=%d, want entry %d — neither arm dominates the join", got, entry)
	}
	if g.Dominates(thenB, join) || g.Dominates(elseB, join) {
		t.Error("an arm of the diamond cannot dominate the join")
	}
	if g.NumLoops() != 0 {
		t.Errorf("diamond has %d loops, want 0", g.NumLoops())
	}
}

func TestUnreachableInstrs(t *testing.T) {
	// Code after an unconditional return is unreachable.
	f := &prog.Function{Name: "dead", Leaf: true, Code: []isa.Instr{
		{Op: isa.RetL},
		{Op: isa.Add, Rd: isa.O0, Rs1: isa.O0, Rs2: isa.O1},
		{Op: isa.RetL},
	}}
	g := BuildCFG(f)
	dead := g.UnreachableInstrs()
	if len(dead) != 2 || dead[0] != 1 || dead[1] != 2 {
		t.Errorf("unreachable=%v, want [1 2]", dead)
	}
}

func TestBuildCFGMalformedBranch(t *testing.T) {
	// An out-of-range branch target must not panic and contributes no edge.
	f := &prog.Function{Name: "bad", Leaf: true, Code: []isa.Instr{
		{Op: isa.Bl, Disp: 100},
		{Op: isa.RetL},
	}}
	g := BuildCFG(f)
	if len(g.Blocks) == 0 {
		t.Fatal("no blocks for malformed function")
	}
	// Fall-through edge only.
	if len(g.Blocks[0].Succs) != 1 {
		t.Errorf("entry succs=%v, want the fall-through edge only", g.Blocks[0].Succs)
	}
}

func TestBuildCFGEmptyFunction(t *testing.T) {
	g := BuildCFG(&prog.Function{Name: "empty"})
	if len(g.Blocks) != 0 {
		t.Errorf("blocks=%d for an empty function", len(g.Blocks))
	}
	if got := g.UnreachableInstrs(); got != nil {
		t.Errorf("unreachable=%v for an empty function", got)
	}
}
