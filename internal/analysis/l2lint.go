package analysis

import (
	"fmt"

	"dsr/internal/cache"
	"dsr/internal/layout"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// L2LintOptions configures the static layout lint.
type L2LintOptions struct {
	// MinFrac is the overlap fraction (of the smaller object's sets)
	// above which a conflicting pair is reported. Zero selects 0.5.
	MinFrac float64
	// MinSets is the minimum number of shared sets worth reporting —
	// tiny objects alias 100% of their one or two sets in any layout.
	// Zero selects 4.
	MinSets int
	// Weights biases reporting towards pairs known to interact; nil
	// selects layout.StaticCallWeights (caller/callee pairs). Weighted
	// pairs are reported at Warning severity, unweighted ones at Info.
	Weights layout.Weights
}

// LintL2Layout is the compile-time "bad layout" diagnostic: for a
// concrete deterministic placement it reuses layout.Conflicts to find
// object pairs whose cache-set footprints alias pathologically in cfg
// (the paper's direct-mapped L2), the situation that produced the
// rare-but-catastrophic execution times DSR exists to randomise away.
//
// Pairs that both alias heavily *and* interact (static call weight > 0)
// are warnings; heavy aliasing between unrelated objects is
// informational, since whether it costs cycles depends on access
// interleaving the static analysis cannot see.
func LintL2Layout(p *prog.Program, pl loader.Placement, cfg cache.Config, opts L2LintOptions) []Diagnostic {
	if err := cfg.Validate(); err != nil {
		return []Diagnostic{{Pass: PassL2Layout, Sev: Error, Msg: "invalid cache config: " + err.Error()}}
	}
	if opts.MinFrac == 0 {
		opts.MinFrac = 0.5
	}
	if opts.MinSets == 0 {
		opts.MinSets = 4
	}
	w := opts.Weights
	if w == nil {
		w = layout.StaticCallWeights(p)
	}

	objs := layout.FromPlacement(p, pl)
	var diags []Diagnostic
	for _, c := range layout.Conflicts(objs, cfg, opts.MinSets) {
		frac := c.FracA
		if c.FracB > frac {
			frac = c.FracB
		}
		if frac < opts.MinFrac {
			continue
		}
		sev := Info
		note := ""
		if weight := w.Get(c.A, c.B); weight > 0 {
			sev = Warning
			note = " (the pair interacts: static call weight > 0)"
		}
		if cfg.Ways == 1 && sev == Warning {
			note += "; in a direct-mapped cache these lines evict each other on every alternation"
		}
		diags = append(diags, Diagnostic{
			Pass: PassL2Layout, Sev: sev, Fn: c.A, Index: -1,
			Msg: formatConflict(c, cfg, note),
		})
	}
	return diags
}

func formatConflict(c layout.Conflict, cfg cache.Config, note string) string {
	return fmt.Sprintf("deterministic layout aliases %s and %s in %d of %d %s sets (%.0f%% / %.0f%%)%s",
		c.A, c.B, c.SharedSets, cfg.Sets(), cfg.Name, c.FracA*100, c.FracB*100, note)
}
