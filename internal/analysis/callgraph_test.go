package analysis

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

// chainProgram builds main → a → b (leaf), with frame sizes chosen so
// the worst chain is unambiguous.
func chainProgram(t *testing.T) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: "chain", Entry: "main"}
	b := prog.NewLeaf("b").RetLeaf().MustBuild()
	a := prog.NewFunc("a", prog.MinFrame+32).
		Prologue().
		Call("b").
		Epilogue().
		MustBuild()
	short := prog.NewLeaf("short").RetLeaf().MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Call("a").
		Call("short").
		Halt().
		MustBuild()
	for _, f := range []*prog.Function{main, a, b, short} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildCallGraph(t *testing.T) {
	cg := BuildCallGraph(chainProgram(t), nil)
	if got := cg.Callees["main"]; len(got) != 2 || got[0] != "a" || got[1] != "short" {
		t.Errorf("main callees=%v, want [a short]", got)
	}
	if got := cg.Callees["a"]; len(got) != 1 || got[0] != "b" {
		t.Errorf("a callees=%v, want [b]", got)
	}
	if len(cg.UnresolvedIndirect) != 0 {
		t.Errorf("unresolved=%v, want none", cg.UnresolvedIndirect)
	}
}

func TestAnalyzeStackBounds(t *testing.T) {
	p := chainProgram(t)
	sb, err := AnalyzeStack(p, StackOptions{NumWindows: 8})
	if err != nil {
		t.Fatal(err)
	}
	// main and a save (2 windows); the chain main→a→b has 3 calls deep.
	if sb.MaxWindowDepth != 2 {
		t.Errorf("window depth=%d, want 2", sb.MaxWindowDepth)
	}
	if sb.MaxCallDepth != 3 {
		t.Errorf("call depth=%d, want 3", sb.MaxCallDepth)
	}
	want := prog.MinFrame + prog.MinFrame + 32
	if int(sb.MaxStackBytes) != want {
		t.Errorf("stack bytes=%d, want %d", sb.MaxStackBytes, want)
	}
	if sb.WindowSpillBound != 0 {
		t.Errorf("spill bound=%d, want 0 (2 windows fit in 7 resident)", sb.WindowSpillBound)
	}
	if len(sb.WorstChain) != 3 || sb.WorstChain[0] != "main" || sb.WorstChain[1] != "a" || sb.WorstChain[2] != "b" {
		t.Errorf("worst chain=%v, want [main a b]", sb.WorstChain)
	}
}

func TestAnalyzeStackOffsetBound(t *testing.T) {
	p := chainProgram(t)
	base, err := AnalyzeStack(p, StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dsr, err := AnalyzeStack(p, StackOptions{StackOffsetBound: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Two non-leaf frames on the worst chain → +2×1024 under DSR.
	if got := dsr.MaxStackBytes - base.MaxStackBytes; got != 2048 {
		t.Errorf("DSR stack growth=%d, want 2048", got)
	}
}

func TestAnalyzeStackRejectsRecursion(t *testing.T) {
	p := &prog.Program{Name: "rec", Entry: "main"}
	f := &prog.Function{Name: "main", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Call, Sym: "main"},
		{Op: isa.Ret},
	}}
	p.Functions = append(p.Functions, f)
	if _, err := AnalyzeStack(p, StackOptions{}); err == nil {
		t.Fatal("recursion accepted; the bound would be meaningless")
	}
}

func TestAnalyzeStackDeepChainSpills(t *testing.T) {
	// 10 nested non-leaf frames on an 8-window machine: 7 resident, 3
	// spilled at the deepest point.
	p := &prog.Program{Name: "deep", Entry: fnName(0)}
	const depth = 10
	for i := 0; i < depth; i++ {
		code := []isa.Instr{{Op: isa.Save, Imm: prog.MinFrame}}
		if i < depth-1 {
			code = append(code, isa.Instr{Op: isa.Call, Sym: fnName(i + 1)})
		}
		code = append(code, isa.Instr{Op: isa.Ret})
		p.Functions = append(p.Functions, &prog.Function{
			Name: fnName(i), FrameSize: prog.MinFrame, Code: code,
		})
	}
	sb, err := AnalyzeStack(p, StackOptions{NumWindows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sb.MaxWindowDepth != depth {
		t.Errorf("window depth=%d, want %d", sb.MaxWindowDepth, depth)
	}
	if sb.WindowSpillBound != depth-7 {
		t.Errorf("spill bound=%d, want %d", sb.WindowSpillBound, depth-7)
	}
}

func fnName(i int) string { return "f" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestResolveDispatchFollowsIndirectCalls(t *testing.T) {
	info := TransformInfo{FTableSym: "__dsr_ftable", OffsetsSym: "__dsr_offsets",
		Funcs: []string{"main", "callee"}}
	f := &prog.Function{Name: "main", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Set, Rd: isa.G6, Sym: "__dsr_ftable"},
		{Op: isa.Ld, Rd: isa.G6, Rs1: isa.G6, Imm: 4},
		{Op: isa.CallR, Rs1: isa.G6},
		{Op: isa.Ret},
	}}
	callee := &prog.Function{Name: "callee", Leaf: true, Code: []isa.Instr{{Op: isa.RetL}}}
	p := &prog.Program{Name: "t", Entry: "main"}
	p.Functions = append(p.Functions, f, callee)

	cg := BuildCallGraph(p, ResolveDispatch(info))
	if got := cg.Callees["main"]; len(got) != 1 || got[0] != "callee" {
		t.Errorf("resolved callees=%v, want [callee]", got)
	}
	if cg.UnresolvedIndirect["main"] != 0 {
		t.Error("canonical dispatch left unresolved")
	}

	// Without the resolver the site is counted, not followed.
	cg = BuildCallGraph(p, nil)
	if cg.UnresolvedIndirect["main"] != 1 {
		t.Errorf("unresolved=%d, want 1", cg.UnresolvedIndirect["main"])
	}
}
