// Package leak is a sound static quantifier of cache side-channel
// leakage for programs running on the simulated LEON3 platform. It
// extends the WCET analyzer's abstract cache model (internal/analysis/
// cachedom, shared via wcet.BuildModel) with a counting component: an
// upper bound on the number of attacker-distinguishable observation
// classes a run can produce. By the standard counting argument
// (CacheAudit; Doychev & Köpf), the channel capacity of any
// deterministic side channel is at most log2 of the number of reachable
// observation classes, for any secret distribution and any
// post-processing by the attacker.
//
// Two attacker models are bounded:
//
//   - Access-based (prime+probe): the attacker primes the caches, lets
//     the victim run once from a flushed state, and probes the final
//     per-set occupancies. Deterministic builds give the attacker set
//     attribution, so the observation is the per-set occupancy vector
//     and the bound is sum_s log2(min(U_s, ways)+1), with U_s the
//     statically-counted victim lines mapping to set s. Randomised
//     builds (DSR software randomisation or hash-random placement)
//     draw a fresh, secret-independent layout every run, so set
//     indices carry placement noise, not secret information: the
//     modeled observable is the sorted occupancy multiset — a
//     partition of the resident-line total — and the bound is the log2
//     of a bounded partition count. The per-placement vector bound is
//     still reported as EnvelopeBits for reference.
//
//   - Trace-based (evict+time at event granularity): the attacker sees
//     the victim's full per-access hit/miss sequence. The observation
//     is determined by the execution path and the per-site outcomes,
//     so the bound is sum over conditional branches of exec*log2(fanout)
//     plus sum over access sites of exec*log2(outcomes), using the
//     must/may classification to shrink per-site alphabets in
//     deterministic mode. DSR does not shrink this channel — moving an
//     object does not hide *whether* each access hit — and the report
//     says so honestly.
//
// For the DSR modes the package additionally reports the layout
// entropy the runtime injects per reboot (a lower bound: the
// independent per-object placement draws, ignoring pool-order
// entropy) and the residual guessing entropy of the layout after n
// observed runs, R(n) >= H - n*C with C the per-run access-channel
// capacity.
package leak

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"dsr/internal/analysis"
	"dsr/internal/analysis/cachedom"
	"dsr/internal/analysis/wcet"
	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// Config parameterises the analysis. The zero value analyses the
// deterministic default layout on the default platform.
type Config struct {
	// Platform supplies the cache/TLB geometry. Nil selects
	// platform.ProximaLEON3().
	Platform *platform.Config
	// Mode selects the layout model (wcet.ModeDet, ModeDSREager,
	// ModeDSRLazy).
	Mode wcet.Mode
	// Layout is the deterministic layout analysed in ModeDet.
	Layout loader.SequentialConfig
	// Resolve attributes indirect calls; Lines maps instructions to
	// source lines for diagnostics. Both may be nil.
	Resolve analysis.CallResolver
	Lines   analysis.LineResolver
	// OffsetBound/StackOffsetBound/Align describe the DSR runtime's
	// randomisation parameters for the layout-entropy accounting; zero
	// values select the runtime defaults (core.Options.fillDefaults:
	// the platform's L2 way size and 8-byte alignment).
	OffsetBound      int
	StackOffsetBound int
	Align            int
	// Budgets are the observation counts for the guessing-entropy
	// table; nil selects {1, 10, 100, 1000}.
	Budgets []int
}

// Channel is the access-based bound for one cache level.
type Channel struct {
	Cache string `json:"cache"`
	// AccessBits is the modeled access-channel capacity bound in bits:
	// the per-set occupancy vector for deterministic set-attributable
	// builds, the sorted occupancy multiset for randomised ones.
	AccessBits float64 `json:"access_bits"`
	// EnvelopeBits is the per-placement vector bound (equals AccessBits
	// in deterministic mode; in randomised modes it is the conservative
	// envelope an attacker who somehow learned the placement would get).
	EnvelopeBits float64 `json:"envelope_bits"`
	// FootprintLines bounds the distinct victim lines; TouchedSets the
	// sets with any possible victim occupancy.
	FootprintLines int `json:"footprint_lines"`
	TouchedSets    int `json:"touched_sets"`
}

// GuessRow is one row of the layout guessing-entropy table.
type GuessRow struct {
	Budget int `json:"budget"`
	// ResidualBits is the layout entropy remaining after Budget runs
	// observed at full access-channel capacity: max(0, H - n*C).
	ResidualBits float64 `json:"residual_bits"`
	// GuessWorkBits: an attacker guessing the layout needs at least
	// 2^GuessWorkBits attempts on average (log2 of the guessing-entropy
	// lower bound 2^(R-1) when R > 1).
	GuessWorkBits float64 `json:"guess_work_bits"`
}

// Report is the analysis result.
type Report struct {
	Program string `json:"program"`
	Entry   string `json:"entry"`
	Mode    string `json:"mode"`

	// Bounded is true iff every channel bound below is finite and sound.
	Bounded bool `json:"bounded"`
	// Saturated marks bounds that hit the arithmetic ceiling — still
	// sound as stated, but useless; treat as a diagnostic.
	Saturated bool `json:"saturated,omitempty"`

	// Channels holds the access-based bound per cache level (IL1, DL1,
	// L2); AccessBits is their sum — the per-run capacity of the whole
	// prime+probe observable.
	Channels   []Channel `json:"channels"`
	AccessBits float64   `json:"access_bits_total"`

	// TraceBits bounds the trace-based (per-access hit/miss sequence)
	// channel; PathBits is the control-flow part of it; TraceSites
	// counts the access sites with a nonzero alphabet.
	TraceBits  float64 `json:"trace_bits"`
	PathBits   float64 `json:"path_bits"`
	TraceSites int     `json:"trace_sites"`

	// LayoutEntropyBits is the per-reboot layout entropy lower bound
	// (DSR modes; 0 in det). Guessing is the residual-entropy table.
	LayoutEntropyBits float64    `json:"layout_entropy_bits,omitempty"`
	Guessing          []GuessRow `json:"guessing,omitempty"`

	Diags []analysis.Diagnostic `json:"diags,omitempty"`
}

// JSON renders the report as indented JSON (the `dsrleak -json`
// contract).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// HasErrors reports whether any Error-severity diagnostic was emitted.
func (r *Report) HasErrors() bool {
	for i := range r.Diags {
		if r.Diags[i].Sev == analysis.Error {
			return true
		}
	}
	return false
}

// Format renders the human-readable report (the `dsrleak` text output).
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "leak: %s entry %s mode %s\n", r.Program, r.Entry, r.Mode)
	if !r.Bounded {
		b.WriteString("  unbounded: no sound leakage bound (see diagnostics)\n")
	} else {
		b.WriteString("  access-based (prime+probe) channel:\n")
		for _, c := range r.Channels {
			fmt.Fprintf(&b, "    %-4s %9.1f bits  (<=%d lines over %d sets; placement-known envelope %.1f bits)\n",
				c.Cache, c.AccessBits, c.FootprintLines, c.TouchedSets, c.EnvelopeBits)
		}
		fmt.Fprintf(&b, "    total %8.1f bits per run\n", r.AccessBits)
		fmt.Fprintf(&b, "  trace-based (hit/miss sequence) channel: %.1f bits (%.1f path + %d sites)\n",
			r.TraceBits, r.PathBits, r.TraceSites)
		if r.LayoutEntropyBits > 0 {
			fmt.Fprintf(&b, "  layout entropy per reboot: >= %.1f bits\n", r.LayoutEntropyBits)
			for _, g := range r.Guessing {
				fmt.Fprintf(&b, "    after %4d run(s): residual >= %.1f bits (guess work >= 2^%.1f)\n",
					g.Budget, g.ResidualBits, g.GuessWorkBits)
			}
		}
		if r.Saturated {
			b.WriteString("  WARNING: a bound saturated the arithmetic ceiling\n")
		}
	}
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Analyze bounds the leakage of p under cfg. It never panics on
// hostile input; front-end failures yield Bounded=false with
// diagnostics.
func Analyze(p *prog.Program, cfg Config) *Report {
	m, wrep := wcet.BuildModel(p, cfg.wcetConfig())
	fillEntropyDefaults(&cfg, wrep)
	return analyzeModel(m, wrep, &cfg)
}

// AnalyzeMode bounds the leakage of the build variant that actually
// runs under mode, mirroring wcet.AnalyzeMode's wiring: the DSR modes
// analyse the core.Transform output with the canonical dispatch
// resolver and the runtime's default randomisation parameters.
func AnalyzeMode(p *prog.Program, mode wcet.Mode, base Config) (*Report, error) {
	base.Mode = mode
	m, wrep, err := wcet.BuildModelMode(p, mode, base.wcetConfig())
	if err != nil {
		return nil, fmt.Errorf("leak: %w", err)
	}
	fillEntropyDefaults(&base, wrep)
	return analyzeModel(m, wrep, &base), nil
}

func (cfg *Config) wcetConfig() wcet.Config {
	return wcet.Config{
		Platform: cfg.Platform,
		Mode:     cfg.Mode,
		Layout:   cfg.Layout,
		Resolve:  cfg.Resolve,
		Lines:    cfg.Lines,
		// Entropy parameters feed the stack analysis bound too.
		StackOffsetBound: cfg.StackOffsetBound,
	}
}

// fillEntropyDefaults mirrors core.Options.fillDefaults so the entropy
// accounting describes the runtime that actually executes.
func fillEntropyDefaults(cfg *Config, wrep *wcet.Report) {
	if cfg.Platform == nil {
		def := platform.ProximaLEON3()
		cfg.Platform = &def
	}
	if cfg.OffsetBound == 0 {
		cfg.OffsetBound = cfg.Platform.L2.WaySize()
	}
	if cfg.StackOffsetBound == 0 {
		cfg.StackOffsetBound = cfg.OffsetBound
	}
	if cfg.Align == 0 {
		cfg.Align = mem.DoubleWord
	}
	if cfg.Budgets == nil {
		cfg.Budgets = []int{1, 10, 100, 1000}
	}
	_ = wrep
}

// analyzeModel derives every bound from the front-end model.
func analyzeModel(m *wcet.Model, wrep *wcet.Report, cfg *Config) *Report {
	rep := &Report{
		Program: wrep.Program,
		Entry:   wrep.Entry,
		Mode:    wrep.Mode,
		Diags:   append([]analysis.Diagnostic(nil), wrep.Diags...),
	}
	if m == nil {
		return rep
	}
	a := &lkAnalyzer{m: m, wrep: wrep, cfg: cfg, rep: rep}
	if !a.validate() {
		return rep
	}
	a.accessChannels()
	a.traceChannel()
	a.entropy()
	rep.Bounded = true
	rep.Saturated = a.sat
	return rep
}

type lkAnalyzer struct {
	m    *wcet.Model
	wrep *wcet.Report
	cfg  *Config
	rep  *Report

	l2dom *cachedom.Dom
	mult  map[string]float64
	sat   bool
}

func (a *lkAnalyzer) diag(sev analysis.Severity, format string, args ...interface{}) {
	a.rep.Diags = append(a.rep.Diags, analysis.Diagnostic{
		Pass: "leak", Sev: sev, Index: -1, Msg: fmt.Sprintf(format, args...),
	})
}

// reachableFuncs returns the reachable function names in deterministic
// order (map iteration must not leak into Channels/Diags ordering).
func (a *lkAnalyzer) reachableFuncs() []string {
	names := make([]string, 0, len(a.m.Reach))
	for name, ok := range a.m.Reach {
		if ok && a.m.Funcs[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// validate refuses programs the counting argument cannot cover: an
// unresolved indirect call (unknown control flow) or an unresolved
// loop bound (unbounded trace alphabet).
func (a *lkAnalyzer) validate() bool {
	ok := true
	for _, name := range a.reachableFuncs() {
		fm := a.m.Funcs[name]
		for _, li := range a.loopsOf(fm) {
			if fm.Loops[li].Bound <= 0 {
				a.diag(analysis.Error,
					"%s: loop at block %d has no resolved bound: trace channel unbounded", name, fm.Loops[li].Header)
				ok = false
			}
		}
		for bi, blk := range fm.G.Blocks {
			if !fm.G.Reachable[bi] {
				continue
			}
			for i := blk.Start; i < blk.End; i++ {
				if fm.Plan.Call[i] && fm.Callee[i] == "" {
					a.diag(analysis.Error,
						"%s+%d: unresolved indirect call: control flow unknown", name, i)
					ok = false
				}
			}
		}
	}
	return ok
}

// loopsOf returns the indices of loops any reachable block belongs to.
func (a *lkAnalyzer) loopsOf(fm *wcet.FuncModel) []int {
	seen := map[int]bool{}
	var out []int
	for bi := range fm.G.Blocks {
		if !fm.G.Reachable[bi] {
			continue
		}
		for li := fm.Innermost[bi]; li >= 0; li = fm.Loops[li].Parent {
			if seen[li] {
				break
			}
			seen[li] = true
			out = append(out, li)
		}
	}
	sort.Ints(out)
	return out
}

func (a *lkAnalyzer) det() bool { return a.m.Mode == wcet.ModeDet }

// ---------------------------------------------------------------------
// Access-based channel.

// accessChannels builds the per-cache victim footprints and converts
// them to capacity bounds.
func (a *lkAnalyzer) accessChannels() {
	pf := a.m.Platform
	a.l2dom = cachedom.New(pf.L2)
	il1c := newSetCounter(a.m.IL1)
	dl1c := newSetCounter(a.m.DL1)
	l2c := newSetCounter(a.l2dom)

	a.codeFootprint(il1c, dl1c, l2c)
	a.dataFootprint(dl1c, l2c)
	a.pageTableFootprint(l2c)

	a.rep.Channels = []Channel{
		a.channel("IL1", il1c, pf.IL1),
		a.channel("DL1", dl1c, pf.DL1),
		a.channel("L2", l2c, pf.L2),
	}
	for _, c := range a.rep.Channels {
		a.rep.AccessBits += c.AccessBits
	}
}

// channel converts one footprint into the per-cache bound. Set
// attribution requires both a deterministic layout and modulo
// placement; otherwise the multiset bound applies (fresh placement or
// hash seed per run, secret-independent).
func (a *lkAnalyzer) channel(name string, sc *setCounter, ccfg cache.Config) Channel {
	env := sc.vectorBits()
	ch := Channel{
		Cache:          name,
		EnvelopeBits:   env,
		FootprintLines: sc.totalLines(),
		TouchedSets:    sc.touchedSets(),
	}
	if a.det() && ccfg.Placement == cache.PlacementModulo {
		ch.AccessBits = env
	} else {
		ch.AccessBits = multisetBits(sc.totalLines(), int(sc.dom.NSets), sc.dom.NWays)
	}
	return ch
}

// codeFootprint: every reachable function's code installs in IL1 and
// L2. Lazy relocation additionally streams each function's old copy
// through DL1 (the copy loop reads every old word; DL1 is never
// invalidated by the relocator, and the old L2 lines it refills are
// invalidated again before the relocator returns, so only DL1 keeps
// them).
func (a *lkAnalyzer) codeFootprint(il1c, dl1c, l2c *setCounter) {
	lazy := a.m.Mode == wcet.ModeDSRLazy
	for _, name := range a.reachableFuncs() {
		fm := a.m.Funcs[name]
		size := int64(fm.Fn.SizeBytes())
		if a.det() {
			il1c.addRange(fm.Base, fm.Base+mem.Addr(size)-1)
			l2c.addRange(fm.Base, fm.Base+mem.Addr(size)-1)
			continue
		}
		il1c.addRelative(lineSpan(size, a.m.IL1.LineSz))
		l2c.addRelative(lineSpan(size, a.l2dom.LineSz))
		if lazy {
			dl1c.addRelative(lineSpan(size, a.m.DL1.LineSz))
		}
	}
}

// dataFootprint: loads install in DL1 and L2; stores install only where
// the write policy allocates (the LEON3 DL1 is write-through/no-
// allocate — a store miss leaves DL1 untouched but the write-through
// installs the line in the write-back L2). The stack span is concrete
// in every mode (it grows down from StackTop; DSR only shifts frames
// within it). An access with no statically known address saturates the
// data-side footprints.
func (a *lkAnalyzer) dataFootprint(dl1c, l2c *setCounter) {
	pf := a.m.Platform
	dl1Alloc := pf.DL1.Write == cache.WriteBackAllocate
	l2Alloc := pf.L2.Write == cache.WriteBackAllocate
	seenObj := map[string]bool{}
	// Register-window spill/fill traps write window save areas inside
	// the bounded stack span; they are data traffic the Acc table does
	// not list, so a non-window-safe program touches the stack even if
	// no instruction does.
	stackTouched := a.m.Stack != nil && a.m.Stack.WindowSpillBound > 0

	for _, name := range a.reachableFuncs() {
		fm := a.m.Funcs[name]
		for bi, blk := range fm.G.Blocks {
			if !fm.G.Reachable[bi] {
				continue
			}
			for i := blk.Start; i < blk.End; i++ {
				acc := fm.Acc[i]
				if !acc.Load && !acc.Store {
					continue
				}
				installD := acc.Load || (acc.Store && dl1Alloc)
				installL2 := acc.Load || (acc.Store && l2Alloc)
				if !installD && !installL2 {
					continue
				}
				if !acc.Valid {
					a.diag(analysis.Warning,
						"%s+%d: data access has no statically known address: data-side footprints saturated", name, i)
					dl1c.setTop()
					l2c.setTop()
					continue
				}
				switch {
				case strings.HasPrefix(acc.Sym, wcet.StackSymPrefix):
					stackTouched = true
				case acc.Sym == "":
					if acc.Lo < 0 {
						dl1c.setTop()
						l2c.setTop()
						continue
					}
					lo, hi := mem.Addr(acc.Lo), mem.Addr(acc.Hi+int64(acc.Size)-1)
					if installD {
						dl1c.addRange(lo, hi)
					}
					if installL2 {
						l2c.addRange(lo, hi)
					}
				default:
					obj := a.m.Prog.DataObject(acc.Sym)
					if obj == nil {
						dl1c.setTop()
						l2c.setTop()
						continue
					}
					if a.det() {
						base := a.m.Layout[acc.Sym]
						lo := base + mem.Addr(acc.Lo)
						hi := base + mem.Addr(acc.Hi) + mem.Addr(acc.Size) - 1
						if installD {
							dl1c.addRange(lo, hi)
						}
						if installL2 {
							l2c.addRange(lo, hi)
						}
					} else if !seenObj[acc.Sym] {
						seenObj[acc.Sym] = true
						if installD {
							dl1c.addRelative(lineSpan(int64(obj.Size), a.m.DL1.LineSz))
						}
						if installL2 {
							l2c.addRelative(lineSpan(int64(obj.Size), a.l2dom.LineSz))
						}
					}
				}
			}
		}
	}

	if stackTouched && a.m.Stack != nil && a.m.Stack.MaxStackBytes > 0 {
		top := mem.Addr(pf.StackTop)
		lo := top - mem.Addr(a.m.Stack.MaxStackBytes)
		dl1c.addRange(lo, top-1)
		l2c.addRange(lo, top-1)
	}
}

// pageTableFootprint: TLB misses walk the page table through the bus,
// installing the walked entries in the L2 (tlb.TLB does real reads at
// walkBase-derived addresses). Deterministic mode enumerates the exact
// entry words for every page the run can touch; DSR joins over
// placements with one line per walk read per page.
func (a *lkAnalyzer) pageTableFootprint(l2c *setCounter) {
	pf := a.m.Platform
	if a.det() {
		for _, page := range a.detPages() {
			for _, w := range walkAddrs(pf.PageTableBase, page) {
				l2c.addRange(w, w+mem.WordSize-1)
			}
		}
		return
	}
	l2c.addRelative(maxWalkReads(pf) * (a.wrep.ITLBPages + a.wrep.DTLBPages))
}

// detPages enumerates the page numbers of the code span, the data
// objects and the stack span under the deterministic layout.
func (a *lkAnalyzer) detPages() []mem.Addr {
	pages := map[mem.Addr]bool{}
	span := func(lo, hi mem.Addr) {
		for p := lo / mem.PageSize; p <= hi/mem.PageSize; p++ {
			pages[p] = true
		}
	}
	for _, name := range a.reachableFuncs() {
		fm := a.m.Funcs[name]
		span(fm.Base, fm.Base+fm.Fn.SizeBytes()-1)
	}
	for _, d := range a.m.Prog.Data {
		base, ok := a.m.Layout[d.Name]
		if !ok {
			continue
		}
		span(base, base+d.Size-1)
	}
	if a.m.Stack != nil && a.m.Stack.MaxStackBytes > 0 {
		top := mem.Addr(a.m.Platform.StackTop)
		span(top-mem.Addr(a.m.Stack.MaxStackBytes), top-1)
	}
	out := make([]mem.Addr, 0, len(pages))
	for p := range pages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// walkAddrs mirrors tlb.TLB's three-level SRMMU walk addresses.
func walkAddrs(base, page mem.Addr) []mem.Addr {
	return []mem.Addr{
		base + (page>>12)*mem.WordSize,
		base + 0x1000 + (page>>6)*mem.WordSize,
		base + 0x100000 + page*mem.WordSize,
	}
}

func maxWalkReads(pf *platform.Config) int {
	n := pf.ITLB.WalkReads
	if pf.DTLB.WalkReads > n {
		n = pf.DTLB.WalkReads
	}
	if n > 3 {
		n = 3
	}
	return n
}

// ---------------------------------------------------------------------
// Trace-based channel.

// traceChannel bounds log2 of the number of distinct per-access
// hit/miss event sequences. A sequence is determined by the execution
// path (which conditional edges were taken, bounded by exec*log2
// (fanout) per branch block) and by the outcome of every access event
// on that path (bounded per site by its outcome alphabet under the
// must/may classification).
func (a *lkAnalyzer) traceChannel() {
	pf := a.m.Platform
	log23 := math.Log2(3)
	dl1WT := pf.DL1.Write == cache.WriteThroughNoAllocate

	// A fetch or load is one DL1/IL1 probe with outcomes {L1 hit,
	// L1 miss+L2 hit, L1 miss+L2 miss}; the classification collapses
	// the alphabet. A write-through store probes DL1 ({hit, miss}) and
	// always writes the L2 ({hit, miss}).
	loadBits := func(c cachedom.Class) float64 {
		switch c {
		case cachedom.ClassHit:
			return 0
		case cachedom.ClassMiss:
			return 1
		default:
			return log23
		}
	}
	storeBits := func(c cachedom.Class) float64 {
		if dl1WT {
			if c == cachedom.ClassHit || c == cachedom.ClassMiss {
				return 1 // DL1 outcome known; L2 write outcome open
			}
			return 2
		}
		return loadBits(c)
	}

	// TLB walks emit real L2 reads. When the page working set fits the
	// TLBs (the wcet tlbBudget argument) each page walks once; otherwise
	// every access may walk.
	unknownAcc := false
	for _, name := range a.reachableFuncs() {
		fm := a.m.Funcs[name]
		for bi, blk := range fm.G.Blocks {
			if !fm.G.Reachable[bi] {
				continue
			}
			for i := blk.Start; i < blk.End; i++ {
				if (fm.Acc[i].Load || fm.Acc[i].Store) && !fm.Acc[i].Valid {
					unknownAcc = true
				}
			}
		}
	}
	iFits := a.wrep.ITLBPages <= pf.ITLB.Entries
	dFits := a.wrep.DTLBPages <= pf.DTLB.Entries && !unknownAcc
	iWalk, dWalk := float64(pf.ITLB.WalkReads), float64(pf.DTLB.WalkReads)

	var pathBits, siteBits float64
	sites := 0
	for _, name := range a.reachableFuncs() {
		fm := a.m.Funcs[name]
		fmult := a.fnMult(name)
		for bi, blk := range fm.G.Blocks {
			if !fm.G.Reachable[bi] {
				continue
			}
			e := a.capExec(fmult * a.blockMult(fm, bi))
			if e == 0 {
				continue
			}
			if n := len(blk.Succs); n > 1 {
				pathBits += e * math.Log2(float64(n))
			}
			for i := blk.Start; i < blk.End; i++ {
				fb := loadBits(classAt(fm.Class, true, i))
				if !iFits {
					fb += iWalk // every fetch may walk the ITLB
				}
				if fb > 0 {
					siteBits += e * fb
					sites++
				}
				acc := fm.Acc[i]
				if !acc.Load && !acc.Store {
					continue
				}
				var db float64
				if acc.Load {
					db = loadBits(classAt(fm.Class, false, i))
				} else {
					db = storeBits(classAt(fm.Class, false, i))
				}
				if !dFits {
					db += dWalk
				}
				if db > 0 {
					siteBits += e * db
					sites++
				}
			}
		}
	}
	if iFits {
		siteBits += iWalk * float64(a.wrep.ITLBPages)
	}
	if dFits {
		siteBits += dWalk * float64(a.wrep.DTLBPages)
	}

	// Lazy relocation streams each function once through DL1 (read old
	// word, write-through new word), adding observable events the eager
	// mode performs invisibly before the measured window.
	if a.m.Mode == wcet.ModeDSRLazy {
		for _, name := range a.reachableFuncs() {
			fm := a.m.Funcs[name]
			words := float64(fm.Fn.SizeBytes() / isa.InstrBytes)
			siteBits += words * (log23 + 2)
		}
		a.diag(analysis.Info,
			"lazy relocation copies execute inside the observed window: their DL1/L2 traffic is charged to the trace channel")
	}

	// Register-window spill/fill traps are unclassified data traffic:
	// each spill stores one 16-word window into its save area and each
	// later fill loads it back (fills ≤ spills).
	if a.m.Stack != nil && a.m.Stack.WindowSpillBound > 0 {
		db := storeBits(cachedom.ClassUnknown) + loadBits(cachedom.ClassUnknown)
		if !dFits {
			db += 2 * dWalk
		}
		siteBits += float64(a.m.Stack.WindowSpillBound) * 16 * db
		a.diag(analysis.Info,
			"program is not window-safe (up to %d spill(s)): trap traffic charged to the trace channel",
			a.m.Stack.WindowSpillBound)
	}

	a.rep.PathBits = pathBits
	a.rep.TraceBits = a.capExec(pathBits + siteBits)
	a.rep.TraceSites = sites
	if !a.det() {
		a.diag(analysis.Info,
			"DSR does not reduce the trace-based channel: relocation hides *where* lines land, not *whether* each access hits")
	}
}

func classAt(cls *cachedom.Classification, fetch bool, i int) cachedom.Class {
	if cls == nil {
		return cachedom.ClassUnknown
	}
	if fetch {
		return cls.FetchClass[i]
	}
	return cls.DataClass[i]
}

func (a *lkAnalyzer) capExec(v float64) float64 {
	if v >= maxExec || math.IsInf(v, 1) || math.IsNaN(v) {
		a.sat = true
		return maxExec
	}
	return v
}

// blockMult is the product of the loop bounds enclosing block bi.
func (a *lkAnalyzer) blockMult(fm *wcet.FuncModel, bi int) float64 {
	mult := 1.0
	for li := fm.Innermost[bi]; li >= 0; li = fm.Loops[li].Parent {
		mult *= float64(fm.Loops[li].Bound)
	}
	return a.capExec(mult)
}

// fnMult bounds how many times a function can be entered per run,
// memoised over the acyclic call graph (the front end rejects
// recursion).
func (a *lkAnalyzer) fnMult(name string) float64 {
	if a.mult == nil {
		a.mult = map[string]float64{}
	}
	if v, ok := a.mult[name]; ok {
		return v
	}
	a.mult[name] = 0 // cycle guard; unreachable given no recursion
	var total float64
	if name == a.m.Prog.Entry {
		total = 1
	}
	for _, caller := range a.reachableFuncs() {
		fm := a.m.Funcs[caller]
		for bi, blk := range fm.G.Blocks {
			if !fm.G.Reachable[bi] {
				continue
			}
			for i := blk.Start; i < blk.End; i++ {
				if fm.Callee[i] != name {
					continue
				}
				total += a.fnMult(caller) * a.blockMult(fm, bi)
			}
		}
	}
	total = a.capExec(total)
	a.mult[name] = total
	return total
}

// ---------------------------------------------------------------------
// Layout entropy and guessing entropy.

// entropy lower-bounds the per-reboot layout entropy: the runtime draws
// one independent aligned offset per function and per data object
// (heap.Pool.Allocate) and one per non-leaf function's stack frame
// (core.Runtime.Reboot); pool-order permutation entropy is ignored, so
// this undercounts — the safe direction for a security claim.
func (a *lkAnalyzer) entropy() {
	if a.det() {
		return
	}
	perPlace := math.Log2(float64(a.cfg.OffsetBound / a.cfg.Align))
	perStack := math.Log2(float64(a.cfg.StackOffsetBound / a.cfg.Align))
	if perPlace < 0 || perStack < 0 {
		return
	}
	var h float64
	h += perPlace * float64(len(a.m.Prog.Functions)+len(a.m.Prog.Data))
	for _, f := range a.m.Prog.Functions {
		if !f.Leaf {
			h += perStack
		}
	}
	a.rep.LayoutEntropyBits = h

	// Residual layout entropy after n runs observed at full
	// access-channel capacity. One reboot per run (the paper's usage)
	// makes each run a fresh draw; the attacker's best case is
	// extracting the full per-run capacity about the *current* layout,
	// so n budgets the attack on any single layout between reboots.
	c := a.rep.AccessBits
	for _, n := range a.cfg.Budgets {
		r := h - float64(n)*c
		if r < 0 {
			r = 0
		}
		work := r - 1
		if work < 0 {
			work = 0
		}
		a.rep.Guessing = append(a.rep.Guessing, GuessRow{
			Budget: n, ResidualBits: r, GuessWorkBits: work,
		})
	}
}
