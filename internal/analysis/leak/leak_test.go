package leak

import (
	"math"
	"strings"
	"testing"

	"dsr/internal/analysis/cachedom"
	"dsr/internal/analysis/wcet"
	"dsr/internal/isa"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func mustProgram(t *testing.T, name string, fns ...*prog.Function) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: name, Entry: "main"}
	for _, f := range fns {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func diagText(r *Report) string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// straightLine is a loop-free main: a handful of arithmetic ops and a
// halt, no data accesses.
func straightLine() *prog.Function {
	return prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 1).
		AddI(isa.L0, isa.L0, 2).
		Mov(isa.O0, isa.L0).
		Halt().
		MustBuild()
}

// --- multiset partition counting ------------------------------------------

func TestMultisetBitsExact(t *testing.T) {
	cases := []struct {
		k, s, w int
		classes float64
	}{
		{0, 16, 4, 1},   // only the empty cache
		{1, 16, 4, 2},   // t=0 or t=1
		{2, 16, 4, 4},   // {}, {1}, {2}, {1,1}
		{3, 16, 4, 7},   // + {3}, {2,1}, {1,1,1}
		{2, 1, 4, 3},    // one set: totals 0,1,2
		{3, 16, 1, 4},   // direct-mapped: totals 0..3
		{99, 16, 1, 17}, // capped at S sets
	}
	for _, c := range cases {
		got := multisetBits(c.k, c.s, c.w)
		want := math.Log2(c.classes)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("multisetBits(%d,%d,%d) = %.6f; want log2(%v) = %.6f",
				c.k, c.s, c.w, got, c.classes, want)
		}
	}
}

func TestMultisetBitsMonotoneInK(t *testing.T) {
	prev := -1.0
	for k := 0; k <= 600; k += 7 {
		b := multisetBits(k, 128, 4)
		if b < prev {
			t.Fatalf("multisetBits not monotone at K=%d: %f < %f", k, b, prev)
		}
		prev = b
	}
}

// --- per-set counter -------------------------------------------------------

func TestSetCounterVectorBits(t *testing.T) {
	dom := newTestDom(t)
	sc := newSetCounter(dom)
	// Two distinct lines in one set: occupancy in [0,2] -> log2(3).
	sc.addRange(0, 31)
	sc.addRange(128*32, 128*32+31)
	want := math.Log2(3)
	if got := sc.vectorBits(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("vectorBits = %f; want %f", got, want)
	}
	if sc.totalLines() != 2 || sc.touchedSets() != 1 {
		t.Fatalf("lines=%d sets=%d; want 2, 1", sc.totalLines(), sc.touchedSets())
	}
	sc.setTop()
	if got := sc.vectorBits(); math.Abs(got-128*math.Log2(5)) > 1e-9 {
		t.Fatalf("top vectorBits = %f; want 128*log2(5)", got)
	}
}

func newTestDom(t *testing.T) *cachedom.Dom {
	t.Helper()
	return &cachedom.Dom{LineSz: 32, NSets: 128, NWays: 4}
}

// --- deterministic analysis ------------------------------------------------

func TestDetStraightLine(t *testing.T) {
	p := mustProgram(t, "straight", straightLine())
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if len(r.Channels) != 3 {
		t.Fatalf("channels = %d; want IL1, DL1, L2", len(r.Channels))
	}
	il1 := r.Channels[0]
	if il1.Cache != "IL1" || il1.AccessBits <= 0 {
		t.Fatalf("IL1 channel = %+v; want positive bits", il1)
	}
	// Det mode with modulo caches: the modeled bound IS the vector bound.
	for _, c := range r.Channels {
		if c.AccessBits != c.EnvelopeBits {
			t.Fatalf("%s: det AccessBits %f != EnvelopeBits %f", c.Cache, c.AccessBits, c.EnvelopeBits)
		}
	}
	// No data accesses, no stack traffic: the DL1 footprint is empty.
	if dl1 := r.Channels[1]; dl1.FootprintLines != 0 || dl1.AccessBits != 0 {
		t.Fatalf("DL1 = %+v; want empty", dl1)
	}
	if r.LayoutEntropyBits != 0 || r.Guessing != nil {
		t.Fatalf("det mode reported layout entropy %f", r.LayoutEntropyBits)
	}
	if r.TraceBits <= 0 || r.TraceSites == 0 {
		t.Fatalf("trace: bits=%f sites=%d; want positive", r.TraceBits, r.TraceSites)
	}
}

func TestDetLoopScalesTrace(t *testing.T) {
	small := Analyze(mustProgram(t, "l", countedLoop(4)), Config{})
	big := Analyze(mustProgram(t, "l", countedLoop(64)), Config{})
	if !small.Bounded || !big.Bounded {
		t.Fatalf("not bounded:\n%s\n%s", diagText(small), diagText(big))
	}
	if big.TraceBits <= small.TraceBits {
		t.Fatalf("trace bits did not scale with the loop bound: %f <= %f",
			big.TraceBits, small.TraceBits)
	}
	// The access channel counts lines, not executions: same footprint.
	if small.AccessBits != big.AccessBits {
		t.Fatalf("access bits should be iteration-independent: %f != %f",
			small.AccessBits, big.AccessBits)
	}
}

func countedLoop(n int32) *prog.Function {
	return prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		Label("loop").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, n).
		Bl("loop").
		Mov(isa.O0, isa.L0).
		Halt().
		MustBuild()
}

func TestUnknownAddressSaturatesDataSide(t *testing.T) {
	// Load through a data-dependent pointer: the DL1/L2 data footprints
	// must saturate (warning, not refusal).
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		SetI(isa.L0, 0x5000_0000).
		Ld(isa.L1, isa.L0, 0).
		Op3(isa.Sll, isa.L1, isa.L1, isa.L1). // make the next address data-dependent
		Ld(isa.L2, isa.L1, 0).
		Halt().
		MustBuild()
	p := mustProgram(t, "wild", f)
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	dl1 := r.Channels[1]
	if dl1.TouchedSets != 256 {
		t.Fatalf("DL1 touched sets = %d; want saturated (256)", dl1.TouchedSets)
	}
	if !strings.Contains(diagText(r), "no statically known address") {
		t.Fatalf("missing saturation warning:\n%s", diagText(r))
	}
}

func TestUnboundedLoopRefused(t *testing.T) {
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		SetI(isa.L0, 0x5000_0000).
		Ld(isa.L1, isa.L0, 0). // data-dependent trip count
		Label("loop").
		SubI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, 0).
		Bg("loop").
		Halt().
		MustBuild()
	p := mustProgram(t, "unbounded", f)
	r := Analyze(p, Config{})
	if r.Bounded {
		t.Fatal("analysis accepted a program with an unbounded loop")
	}
}

// --- mode chain on the real control application ----------------------------

func analyzeControl(t *testing.T, mode wcet.Mode) *Report {
	t.Helper()
	p, err := spaceapp.BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	r, err := AnalyzeMode(p, mode, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bounded {
		t.Fatalf("mode %s not bounded:\n%s", mode, diagText(r))
	}
	return r
}

func TestControlModeChain(t *testing.T) {
	det := analyzeControl(t, wcet.ModeDet)
	eager := analyzeControl(t, wcet.ModeDSREager)
	lazy := analyzeControl(t, wcet.ModeDSRLazy)

	// The monotonicity chain on the access-based channel: randomisation
	// only removes attacker information, and lazy relocation adds
	// observable traffic over eager.
	if !(eager.AccessBits <= lazy.AccessBits) {
		t.Errorf("access chain violated: eager %f > lazy %f", eager.AccessBits, lazy.AccessBits)
	}
	if !(lazy.AccessBits <= det.AccessBits) {
		t.Errorf("access chain violated: lazy %f > det %f", lazy.AccessBits, det.AccessBits)
	}
	if det.AccessBits <= eager.AccessBits {
		t.Errorf("DSR shows no access-channel benefit: det %f <= eager %f",
			det.AccessBits, eager.AccessBits)
	}

	// Per-cache chain too.
	for i := range det.Channels {
		if eager.Channels[i].AccessBits > det.Channels[i].AccessBits {
			t.Errorf("%s: eager %f > det %f", det.Channels[i].Cache,
				eager.Channels[i].AccessBits, det.Channels[i].AccessBits)
		}
	}

	// The trace channel is NOT reduced by DSR; the analyzer must not
	// pretend otherwise.
	if eager.TraceBits < det.TraceBits {
		t.Errorf("DSR trace bits %f below det %f: the trace channel cannot shrink under randomisation",
			eager.TraceBits, det.TraceBits)
	}

	// DSR modes report layout entropy and a guessing table.
	for _, r := range []*Report{eager, lazy} {
		if r.LayoutEntropyBits <= 0 {
			t.Errorf("mode %s: no layout entropy", r.Mode)
		}
		if len(r.Guessing) == 0 {
			t.Errorf("mode %s: no guessing table", r.Mode)
		}
		prev := math.Inf(1)
		for _, g := range r.Guessing {
			if g.ResidualBits > prev {
				t.Errorf("mode %s: residual entropy not monotone: %+v", r.Mode, r.Guessing)
			}
			prev = g.ResidualBits
		}
	}
	if det.LayoutEntropyBits != 0 {
		t.Errorf("det mode reported layout entropy %f", det.LayoutEntropyBits)
	}
}

func TestReportFormatAndJSON(t *testing.T) {
	r := analyzeControl(t, wcet.ModeDSREager)
	text := r.Format()
	for _, want := range []string{"prime+probe", "trace-based", "layout entropy", "IL1", "L2"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"access_bits_total"`, `"trace_bits"`, `"guessing"`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}
