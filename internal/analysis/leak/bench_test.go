package leak

import (
	"testing"

	"dsr/internal/analysis/wcet"
	"dsr/internal/spaceapp"
)

// BenchmarkLeakAnalyze measures a full leakage analysis of the control
// application in the most expensive mode (DSR eager: multiset counting
// plus the entropy table). Tracked by the benchmark gate.
func BenchmarkLeakAnalyze(b *testing.B) {
	p, err := spaceapp.BuildControl()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := AnalyzeMode(p, wcet.ModeDSREager, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Bounded {
			b.Fatal("control app not bounded")
		}
	}
}
