// Counting machinery for the leakage bounds: per-set occupancy
// counting for the deterministic access-based channel, the bounded
// partition count for the DSR multiset channel, and the execution-count
// calculator for the trace channel.
package leak

import (
	"math"

	"dsr/internal/analysis/cachedom"
	"dsr/internal/mem"
)

// maxExec caps execution-count products; beyond it the report is marked
// saturated (the bits stay finite, but the bound is useless).
const maxExec = 1e18

// setCounter accumulates the victim lines that may be resident in each
// cache set at the end of a run, split — exactly like the WCET
// persistence footprint — into exactly-placed lines and
// relatively-counted lines (unknown 8-byte-aligned base: k consecutive
// lines fall into k consecutive sets, so an unknown-base object of k
// lines lands at most ceil(k/sets) lines in any single set).
type setCounter struct {
	dom      *cachedom.Dom
	exact    []map[mem.Addr]bool
	rel      []int
	relLines int
	top      bool // an unknown-address access: any line may be resident
}

func newSetCounter(dom *cachedom.Dom) *setCounter {
	return &setCounter{
		dom:   dom,
		exact: make([]map[mem.Addr]bool, dom.NSets),
		rel:   make([]int, dom.NSets),
	}
}

// addRange adds the concretely-placed lines covering [lo, hi] (byte
// addresses, inclusive).
func (sc *setCounter) addRange(lo, hi mem.Addr) {
	for l := sc.dom.LineOf(lo); l <= sc.dom.LineOf(hi); l++ {
		s := sc.dom.SetOf(l)
		if sc.exact[s] == nil {
			sc.exact[s] = map[mem.Addr]bool{}
		}
		sc.exact[s][l] = true
	}
}

// addRelative adds an unknown-base object spanning at most k lines.
func (sc *setCounter) addRelative(k int) {
	per := (k + int(sc.dom.NSets) - 1) / int(sc.dom.NSets)
	for s := range sc.rel {
		sc.rel[s] += per
	}
	sc.relLines += k
}

// setTop records that an access with no statically known address was
// seen: every set may hold up to associativity victim lines.
func (sc *setCounter) setTop() { sc.top = true }

// perSet returns the bound on distinct victim lines that may map to set s.
func (sc *setCounter) perSet(s int) int {
	if sc.top {
		return sc.dom.NWays
	}
	return len(sc.exact[s]) + sc.rel[s]
}

// vectorBits is the deterministic (set-attributable) access-channel
// capacity: the final occupancy of set s is an integer in
// [0, min(U_s, ways)], so the observation — the per-set occupancy
// vector — takes at most prod_s (min(U_s, ways)+1) values.
func (sc *setCounter) vectorBits() float64 {
	var bits float64
	for s := 0; s < int(sc.dom.NSets); s++ {
		u := sc.perSet(s)
		if u > sc.dom.NWays {
			u = sc.dom.NWays
		}
		bits += math.Log2(float64(u + 1))
	}
	return bits
}

// touchedSets counts the sets with a nonzero per-set bound.
func (sc *setCounter) touchedSets() int {
	if sc.top {
		return int(sc.dom.NSets)
	}
	n := 0
	for s := 0; s < int(sc.dom.NSets); s++ {
		if sc.perSet(s) > 0 {
			n++
		}
	}
	return n
}

// totalLines bounds the total number of distinct victim lines,
// placement-independent (the K of the multiset channel), capped at the
// cache capacity.
func (sc *setCounter) totalLines() int {
	cap := int(sc.dom.NSets) * sc.dom.NWays
	if sc.top {
		return cap
	}
	n := sc.relLines
	for s := range sc.exact {
		n += len(sc.exact[s])
	}
	if n > cap {
		n = cap
	}
	return n
}

// multisetBits bounds the randomised (set-unattributable) access
// channel: the observation is the sorted multiset of per-set
// occupancies, which is a partition of the total resident-line count
// t <= K into at most S parts, each part <= w. The class count is
// sum_{t=0}^{min(K, S*w)} p(t; <=S parts, parts <= w); the bound is its
// log2.
func multisetBits(K, S, w int) float64 {
	if K > S*w {
		K = S * w
	}
	if K < 0 {
		K = 0
	}
	if w == 1 {
		// Partitions into parts of size 1: one class per total count.
		if K > S {
			K = S
		}
		return math.Log2(float64(K + 1))
	}
	maxParts := K
	if maxParts > S {
		maxParts = S
	}
	// dp[p][t]: partitions of t into exactly <= p parts drawn from part
	// sizes considered so far. Iterate part sizes 1..w with unbounded
	// multiplicity: dp_k[p][t] = dp_{k-1}[p][t] + dp_k[p-1][t-k].
	dp := make([][]float64, maxParts+1)
	for p := range dp {
		dp[p] = make([]float64, K+1)
	}
	dp[0][0] = 1
	for k := 1; k <= w; k++ {
		for p := 1; p <= maxParts; p++ {
			row, prev := dp[p], dp[p-1]
			for t := k; t <= K; t++ {
				row[t] += prev[t-k]
			}
		}
	}
	var classes float64
	for t := 0; t <= K; t++ {
		var pt float64
		for p := 0; p <= maxParts; p++ {
			pt += dp[p][t]
		}
		// dp counts by exact part multiset across sizes; summing over p
		// gives partitions of t with parts <= w and <= maxParts parts.
		classes += pt
	}
	return math.Log2(classes)
}

// lineSpan bounds the distinct cache lines an unknown-base (8-byte
// aligned) object of size bytes can span (the WCET persistence
// footprint's relLineSpan, same formula).
func lineSpan(size int64, lineSz mem.Addr) int {
	if size <= 0 {
		return 1
	}
	return int((size-1)/int64(lineSz)) + 2
}
