package leak

import (
	"testing"

	"dsr/internal/attack"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// FuzzLeakSound is the leakage analyzer's standing soundness oracle,
// the side-channel sibling of wcet.FuzzWCETSound. Every fuzz input is
// decoded into a small structured program whose 64-word buffer is the
// secret: the static analyzer bounds both channels, then the victim
// runs under the attack observers with several secret values, and the
// measured observations must stay inside the static bounds:
//
//   - each run's final per-cache occupancy total ≤ the channel's
//     footprint-line bound,
//   - log2(#distinct prime+probe vector keys) ≤ AccessBits,
//   - log2(#distinct trace keys) ≤ TraceBits, and
//   - log2(#distinct cycle counts) ≤ TraceBits (timing is a function
//     of the path and the per-access outcomes the trace bound counts).
//
// A refusal (Bounded=false) is always acceptable — the invariant
// constrains only the bounds the analyzer is willing to claim.
func FuzzLeakSound(f *testing.F) {
	f.Add([]byte{})                                  // empty body
	f.Add([]byte{0, 1, 2, 3})                        // straight line
	f.Add([]byte{2, 0, 6, 0, 3, 1, 1})               // secret-dependent diamond
	f.Add([]byte{4, 10, 0, 7, 2, 9, 3, 5, 5})        // one loop with a store
	f.Add([]byte{4, 3, 4, 5, 2, 8, 5, 1, 6, 5})      // nested loops
	f.Add([]byte{6, 2, 0, 9, 6, 1, 7, 3})            // diamonds and a call
	f.Add([]byte{8, 0, 8, 5, 4, 6, 8, 2, 5, 7, 0})   // FPU inside a loop
	f.Add([]byte{4, 200, 2, 11, 6, 99, 2, 2, 5, 5})  // loop over a secret load
	f.Add([]byte{2, 4, 6, 4, 3, 0, 2, 12, 6, 12, 3}) // two secret branches

	f.Fuzz(func(t *testing.T, data []byte) {
		p := genLeakProgram(data)
		if p == nil {
			return
		}
		r := Analyze(p, Config{})
		if !r.Bounded {
			// Refusing is sound; claiming is what we check.
			if !r.HasErrors() {
				t.Fatalf("not bounded but no Error diagnostic:\n%s", diagText(r))
			}
			return
		}

		const secrets = 4
		vec := map[string]bool{}
		trc := map[string]bool{}
		cyc := map[string]bool{}
		for _, o := range observeSecrets(t, p, secrets) {
			for ci, occ := range [][]int{o.IL1, o.DL1, o.L2} {
				total := 0
				for _, n := range occ {
					total += n
				}
				if ch := r.Channels[ci]; total > ch.FootprintLines {
					t.Fatalf("UNSOUND: %s occupancy %d lines > static footprint %d\ndiags:\n%s",
						ch.Cache, total, ch.FootprintLines, diagText(r))
				}
			}
			vec[o.PrimeProbeKey(true)] = true
			trc[o.TraceKey()] = true
			cyc[o.CyclesKey()] = true
		}
		if got := attack.DistinctBits(len(vec)); got > r.AccessBits+1e-9 {
			t.Fatalf("UNSOUND: measured access bits %f > static %f (%d keys over %d secrets)",
				got, r.AccessBits, len(vec), secrets)
		}
		if got := attack.DistinctBits(len(trc)); got > r.TraceBits+1e-9 {
			t.Fatalf("UNSOUND: measured trace bits %f > static %f", got, r.TraceBits)
		}
		if got := attack.DistinctBits(len(cyc)); got > r.TraceBits+1e-9 {
			t.Fatalf("UNSOUND: measured timing bits %f > static trace bound %f", got, r.TraceBits)
		}
	})
}

// observeSecrets runs p's deterministic build n times, each with a
// different secret in "buf", under the prime+probe/evict+time probe.
func observeSecrets(t *testing.T, p *prog.Program, n int) []attack.Observation {
	t.Helper()
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatalf("load after a bounded analysis: %v", err)
	}
	base, ok := img.Symbols["buf"]
	if !ok {
		t.Fatal("generated image has no buf symbol")
	}
	out := make([]attack.Observation, 0, n)
	for v := 0; v < n; v++ {
		plat := platform.New(platform.ProximaLEON3())
		plat.LoadImage(img)
		probe := attack.Attach(plat)
		for w := 0; w < leakBufWords; w++ {
			secret := uint32(v+1)*2654435761 ^ uint32(w)*0x9E3779B9
			plat.Mem.StoreWord(base+mem.Addr(w)*4, secret)
		}
		probe.Reset()
		res, err := plat.Run()
		if err != nil {
			t.Fatalf("secret %d: %v", v, err)
		}
		out = append(out, probe.Snapshot(res.Cycles))
	}
	return out
}

const leakBufWords = 64

// genLeakProgram deterministically decodes fuzz bytes into a valid
// program, or nil when the decoded body fails to build. The grammar
// mirrors wcet's fuzz grammar (counted loops two deep over L6/L7,
// arithmetic, buffer loads/stores, forward diamonds, a leaf call, FPU
// blocks) so the two soundness fuzzers explore the same program space;
// here the buffer doubles as the secret the dynamic oracle varies.
func genLeakProgram(data []byte) *prog.Program {
	if len(data) > 96 {
		data = data[:96] // cap simulated run length
	}
	scratch := []isa.Reg{isa.L0, isa.L1, isa.L2, isa.L3, isa.L4}
	counters := []isa.Reg{isa.L6, isa.L7}
	intOps := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Xor, isa.Or, isa.And}

	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.I5, "buf")
	for i, r := range scratch {
		b.MovI(r, int32(i+1))
	}

	next := func(i *int) byte {
		if *i >= len(data) {
			return 0
		}
		v := data[*i]
		*i++
		return v
	}

	type openLoop struct {
		reg   isa.Reg
		bound int32
		label string
	}
	var loops []openLoop
	labelID := 0
	callUsed := false

	i := 0
	for i < len(data) {
		switch next(&i) % 9 {
		case 0, 1: // integer arithmetic
			op := intOps[int(next(&i))%len(intOps)]
			rd := scratch[int(next(&i))%len(scratch)]
			rs := scratch[int(next(&i))%len(scratch)]
			if next(&i)%2 == 0 {
				b.OpI(op, rd, rs, int32(next(&i))%17)
			} else {
				b.Op3(op, rd, rs, scratch[int(next(&i))%len(scratch)])
			}
		case 2: // load a secret word from the buffer
			rd := scratch[int(next(&i))%len(scratch)]
			b.Ld(rd, isa.I5, int32(next(&i))%leakBufWords*4)
		case 3: // store into the buffer
			rs := scratch[int(next(&i))%len(scratch)]
			b.St(rs, isa.I5, int32(next(&i))%leakBufWords*4)
		case 4: // open a counted loop
			if len(loops) >= len(counters) {
				continue
			}
			reg := counters[len(loops)]
			bound := int32(next(&i))%13 + 1
			labelID++
			l := openLoop{reg: reg, bound: bound, label: "L" + string(rune('a'+labelID%26)) + string(rune('0'+labelID/26))}
			b.MovI(reg, 0).Label(l.label)
			loops = append(loops, l)
		case 5: // close the innermost loop
			if len(loops) == 0 {
				continue
			}
			l := loops[len(loops)-1]
			loops = loops[:len(loops)-1]
			b.AddI(l.reg, l.reg, 1).CmpI(l.reg, l.bound).Bl(l.label)
		case 6: // forward diamond (secret-dependent when r holds a load)
			labelID++
			skip := "S" + string(rune('a'+labelID%26)) + string(rune('0'+labelID/26))
			r := scratch[int(next(&i))%len(scratch)]
			b.CmpI(r, int32(next(&i))%8)
			if next(&i)%2 == 0 {
				b.Be(skip)
			} else {
				b.Bg(skip)
			}
			b.OpI(intOps[int(next(&i))%len(intOps)], r, r, 3)
			b.Label(skip)
		case 7: // call the leaf helper
			callUsed = true
			b.Call("helper")
		case 8: // FPU block (fdiv exercises the jitter bound)
			off1 := int32(next(&i)) % leakBufWords * 4
			off2 := int32(next(&i)) % leakBufWords * 4
			f0, f1, f2, f3 := isa.FReg(0), isa.FReg(1), isa.FReg(2), isa.FReg(3)
			b.FLd(f0, isa.I5, off1).
				FLd(f1, isa.I5, off2).
				Fadd(f2, f0, f1).
				Fdiv(f3, f2, f1).
				FSt(f3, isa.I5, off2)
		}
	}
	for len(loops) > 0 { // close any loops left open
		l := loops[len(loops)-1]
		loops = loops[:len(loops)-1]
		b.AddI(l.reg, l.reg, 1).CmpI(l.reg, l.bound).Bl(l.label)
	}
	b.Halt()

	main, err := b.Build()
	if err != nil {
		return nil
	}
	p := &prog.Program{Name: "leakfuzz", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "buf", Size: leakBufWords * 4, Align: 8}); err != nil {
		return nil
	}
	if err := p.AddFunction(main); err != nil {
		return nil
	}
	if callUsed {
		helper, err := prog.NewLeaf("helper").
			AddI(isa.O0, isa.O0, 1).
			MulI(isa.O1, isa.O0, 3).
			RetLeaf().
			Build()
		if err != nil {
			return nil
		}
		if err := p.AddFunction(helper); err != nil {
			return nil
		}
	}
	if err := p.Validate(); err != nil {
		return nil
	}
	return p
}
