package schedfeas

import (
	"reflect"
	"testing"

	"dsr/internal/prng"
)

// caseStudySpec mirrors the paper's two-partition frame: a 1s major
// frame on the 80 MHz LEON3, the high-criticality control task (1s
// period, 30ms window, free release jitter) and the low-criticality
// image-processing task (100ms period, 60ms window, jitter bounded so
// it stays near its sensor cadence). Phases are the sched.Fit
// fixed-phase offsets (processing 0, control 60).
func caseStudySpec() *Spec {
	return &Spec{
		FrameMillis:    1000,
		CyclesPerMilli: 80_000,
		Tasks: []Task{
			{Name: "control", PeriodMillis: 1000, BudgetMillis: 30, PhaseMillis: 60,
				WCETCycles: 280_279, Criticality: 1, JitterMillis: -1},
			{Name: "processing", PeriodMillis: 100, BudgetMillis: 60, PhaseMillis: 0,
				WCETCycles: 1_500_000, Criticality: 0, JitterMillis: 40},
		},
	}
}

// fullPolicy is the E9 "sched-rand" cell: all three randomisation
// mechanisms on.
func fullPolicy() Policy {
	return Policy{SegmentChoice: true, PermuteOrder: true, SlotJitterMillis: 40}
}

func TestSpecValidate(t *testing.T) {
	if errs := caseStudySpec().Validate(); len(errs) > 0 {
		t.Fatalf("case-study spec invalid: %v", errs)
	}
	bad := []Spec{
		{FrameMillis: 0, CyclesPerMilli: 1, Tasks: []Task{{Name: "t", PeriodMillis: 10, BudgetMillis: 1}}},
		{FrameMillis: 100, CyclesPerMilli: 1},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{{Name: "", PeriodMillis: 10, BudgetMillis: 1}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{
			{Name: "a", PeriodMillis: 10, BudgetMillis: 1},
			{Name: "a", PeriodMillis: 10, BudgetMillis: 1}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{{Name: "t", PeriodMillis: 30, BudgetMillis: 1}}},  // 30 ∤ 100
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{ // 25 not multiple of 10
			{Name: "a", PeriodMillis: 10, BudgetMillis: 1},
			{Name: "b", PeriodMillis: 25, BudgetMillis: 1}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{{Name: "t", PeriodMillis: 10, BudgetMillis: 11}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{{Name: "t", PeriodMillis: 10, BudgetMillis: 4, PhaseMillis: 8}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{{Name: "t", PeriodMillis: 10, BudgetMillis: 1, JitterMillis: -2}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{{Name: "t", PeriodMillis: 10, BudgetMillis: 1, StackBoundBytes: -1}}},
		{FrameMillis: 100, CyclesPerMilli: 1, Tasks: []Task{ // budget exceeds base segment
			{Name: "a", PeriodMillis: 10, BudgetMillis: 1},
			{Name: "b", PeriodMillis: 100, BudgetMillis: 20, PhaseMillis: 0}}},
	}
	for i, s := range bad {
		if errs := s.Validate(); len(errs) == 0 {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestDrawDetIsNominal(t *testing.T) {
	spec := caseStudySpec()
	fs, err := Draw(spec, Policy{}, prng.NewMWC(7))
	if err != nil {
		t.Fatal(err)
	}
	want := nominalSchedule(spec)
	if !reflect.DeepEqual(fs, want) {
		t.Fatalf("det draw != nominal:\n%+v\n%+v", fs, want)
	}
	if vs := spec.Check(fs); len(vs) > 0 {
		t.Fatalf("nominal schedule infeasible: %v", vs)
	}
	// 11 windows: 10 processing + 1 control.
	if len(fs.Windows) != 11 {
		t.Fatalf("got %d windows, want 11", len(fs.Windows))
	}
}

func TestDrawByteDeterministicPerSeed(t *testing.T) {
	spec := caseStudySpec()
	pol := fullPolicy()
	a, err := Draw(spec, pol, prng.NewMWC(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Draw(spec, pol, prng.NewMWC(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different schedules")
	}
	// Over a handful of seeds the draws should not all collapse onto
	// one schedule.
	distinct := 0
	for seed := uint64(0); seed < 8; seed++ {
		fs, err := Draw(spec, pol, prng.NewMWC(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fs, a) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("8 seeds all drew the same schedule")
	}
}

func TestDrawAlwaysFeasible(t *testing.T) {
	spec := caseStudySpec()
	for _, pol := range []Policy{
		{},
		{SlotJitterMillis: 40},
		{PermuteOrder: true},
		{SegmentChoice: true},
		fullPolicy(),
	} {
		for seed := uint64(0); seed < 50; seed++ {
			fs, err := Draw(spec, pol, prng.NewMWC(seed))
			if err != nil {
				t.Fatalf("%v seed %d: %v", pol, seed, err)
			}
			if vs := spec.Check(fs); len(vs) > 0 {
				t.Fatalf("%v seed %d drew infeasible schedule: %v\n%+v", pol, seed, vs, fs)
			}
		}
	}
}

func TestDrawRejectsInvalid(t *testing.T) {
	if _, err := Draw(&Spec{}, Policy{}, prng.NewMWC(1)); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Draw(caseStudySpec(), Policy{SlotJitterMillis: -1}, prng.NewMWC(1)); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestDrawDeadEnd(t *testing.T) {
	// Three 40ms windows cannot share one 100ms segment: the third
	// placement dead-ends under a non-deterministic policy.
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1000,
		Tasks: []Task{
			{Name: "a", PeriodMillis: 100, BudgetMillis: 40, PhaseMillis: 0, JitterMillis: -1},
			{Name: "b", PeriodMillis: 100, BudgetMillis: 40, PhaseMillis: 40, JitterMillis: -1},
			{Name: "c", PeriodMillis: 100, BudgetMillis: 40, PhaseMillis: 60, JitterMillis: -1},
		},
	}
	if _, err := Draw(spec, Policy{SlotJitterMillis: 5}, prng.NewMWC(3)); err == nil {
		t.Fatal("overcommitted segment drew successfully")
	}
}

func TestCheckCatchesTampering(t *testing.T) {
	spec := caseStudySpec()
	fs := nominalSchedule(spec)
	// Overlap: shift control onto processing's first window.
	tampered := *fs
	tampered.Windows = append([]PlacedWindow(nil), fs.Windows...)
	for i := range tampered.Windows {
		if tampered.Windows[i].Task == "control" {
			tampered.Windows[i].StartMillis = 10
			tampered.Windows[i].Segment = 0
		}
	}
	sortWindows(tampered.Windows)
	if vs := spec.Check(&tampered); len(vs) == 0 {
		t.Error("overlapping schedule accepted")
	}
	// Missing activation.
	short := &FrameSchedule{Windows: fs.Windows[:len(fs.Windows)-1]}
	if vs := spec.Check(short); len(vs) == 0 {
		t.Error("incomplete schedule accepted")
	}
	// Unknown task.
	alien := &FrameSchedule{Windows: []PlacedWindow{{Task: "ghost", BudgetMillis: 1}}}
	if vs := spec.Check(alien); len(vs) == 0 {
		t.Error("unknown task accepted")
	}
	// Jitter breach: processing activation 1 moved to the end of its
	// period (deviation 40 < start 140-100 yields deviation 40 — use 41).
	late := *fs
	late.Windows = append([]PlacedWindow(nil), fs.Windows...)
	for i := range late.Windows {
		if late.Windows[i].Task == "processing" && late.Windows[i].Activation == 1 {
			late.Windows[i].StartMillis = 141
			late.Windows[i].Segment = 1
		}
	}
	sortWindows(late.Windows)
	if vs := spec.Check(&late); len(vs) == 0 {
		t.Error("jitter breach accepted")
	}
}

func TestCheckCritOrder(t *testing.T) {
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1000,
		CritOrdered:    true,
		Tasks: []Task{
			{Name: "hi", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 0, Criticality: 1, JitterMillis: -1},
			{Name: "lo", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 10, Criticality: 0, JitterMillis: -1},
		},
	}
	if vs := spec.Check(nominalSchedule(spec)); len(vs) > 0 {
		t.Fatalf("crit-ordered nominal rejected: %v", vs)
	}
	swapped := &FrameSchedule{Windows: []PlacedWindow{
		{Task: "lo", Activation: 0, StartMillis: 0, Segment: 0, BudgetMillis: 10},
		{Task: "hi", Activation: 0, StartMillis: 10, Segment: 0, BudgetMillis: 10},
	}}
	if vs := spec.Check(swapped); len(vs) == 0 {
		t.Error("low-before-high criticality order accepted")
	}
}

func TestPriorityOrder(t *testing.T) {
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1,
		Tasks: []Task{
			{Name: "z-slow", PeriodMillis: 100, BudgetMillis: 1, Criticality: 0},
			{Name: "b-crit", PeriodMillis: 100, BudgetMillis: 1, Criticality: 5},
			{Name: "a-fast", PeriodMillis: 50, BudgetMillis: 1, Criticality: 0},
			{Name: "a-slow", PeriodMillis: 100, BudgetMillis: 1, Criticality: 0},
		},
	}
	var names []string
	for _, i := range spec.priorityOrder() {
		names = append(names, spec.Tasks[i].Name)
	}
	want := []string{"b-crit", "a-fast", "a-slow", "z-slow"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("priority order %v, want %v", names, want)
	}
}
