package schedfeas

import (
	"testing"

	"dsr/internal/prng"
)

// FuzzSchedFeas is the analyzer's standing soundness oracle: every fuzz
// input decodes into a small task set and randomizer policy, and the
// two halves of the package are played against each other.
//
//   - When Analyze certifies the policy, every actual Draw must
//     succeed, satisfy the spec's own checker, and be a member of the
//     certified support — a drawable schedule outside the certificate
//     is exactly the unsoundness the analyzer exists to rule out.
//   - When Analyze pinpoints a violating draw, the pinpointed schedule
//     must really violate the spec — the analyzer must not reject
//     feasible randomizers with fabricated counterexamples.
//   - A refusal (caps exceeded) is always acceptable; the invariant
//     constrains only the claims the analyzer is willing to make.
func FuzzSchedFeas(f *testing.F) {
	f.Add([]byte{})                                   // degenerate → invalid spec
	f.Add([]byte{0, 1, 0, 1, 1, 0, 0, 0})             // one task, det policy
	f.Add([]byte{1, 3, 1, 0, 2, 1, 1, 2, 7})          // harmonic pair, full policy
	f.Add([]byte{2, 2, 2, 1, 1, 3, 0, 2, 2, 1, 5})    // jitter-bounded tasks
	f.Add([]byte{0, 3, 2, 3, 0, 0, 1, 1, 2, 3, 0, 1}) // crit-ordered permutation
	f.Add([]byte{3, 1, 1, 2, 3, 0, 2, 0})             // single-segment frame

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, policy := genSpec(data)
		if spec == nil || len(spec.Validate()) > 0 {
			return
		}
		rep := Analyze(spec, policy, Config{})
		if rep.Refused {
			return
		}
		if rep.Feasible {
			if rep.Cert == nil {
				t.Fatal("feasible report without a certificate")
			}
			for seed := uint64(0); seed < 24; seed++ {
				fs, err := Draw(spec, policy, prng.NewMWC(seed))
				if err != nil {
					t.Fatalf("UNSOUND: certified feasible but draw(seed=%d) failed: %v", seed, err)
				}
				if vs := spec.Check(fs); len(vs) > 0 {
					t.Fatalf("UNSOUND: certified feasible but draw(seed=%d) violates the spec: %v\n%+v",
						seed, vs, fs)
				}
				if err := rep.Cert.Contains(fs); err != nil {
					t.Fatalf("UNSOUND: draw(seed=%d) outside the certified support: %v\n%+v",
						seed, err, fs)
				}
			}
			return
		}
		if len(rep.Violations) == 0 {
			t.Fatal("infeasible report without a violation")
		}
		for _, v := range rep.Violations {
			if v.Schedule == nil {
				continue // dead-end violations carry no complete schedule
			}
			if vs := spec.Check(v.Schedule); len(vs) == 0 {
				t.Fatalf("pinpointed draw passes the spec checker: %+v", v)
			}
		}
	})
}

// genSpec deterministically decodes fuzz bytes into a candidate task
// set and policy. The grammar keeps most decoded specs valid (harmonic
// periods on a shared base segment, budgets within the segment) so the
// corpus exercises the enumeration and certification paths rather than
// Validate's rejections.
func genSpec(data []byte) (*Spec, Policy) {
	if len(data) < 4 {
		return nil, Policy{}
	}
	i := 0
	next := func() int {
		if i >= len(data) {
			return 0
		}
		v := int(data[i])
		i++
		return v
	}

	segLen := 1 + next()%4      // base segment (shortest period), ms
	mult := 1 + next()%4        // segments per frame
	frame := segLen * mult
	pol := next()
	policy := Policy{
		SegmentChoice:    pol&1 != 0,
		PermuteOrder:     pol&2 != 0,
		SlotJitterMillis: (pol >> 2) % 4,
	}
	spec := &Spec{
		FrameMillis:    frame,
		CyclesPerMilli: 1000,
		CritOrdered:    pol&16 != 0,
	}

	n := 1 + next()%3
	names := []string{"a", "b", "c"}
	for k := 0; k < n; k++ {
		// Period: the base segment or a harmonic multiple dividing the
		// frame (any divisor d of mult gives period segLen*d).
		d := 1 + next()%mult
		for frame%(segLen*d) != 0 {
			d--
		}
		period := segLen * d
		budget := 1 + next()%segLen
		phase := next() % (period - budget + 1)
		jitter := next()%5 - 1 // -1 (unconstrained) .. 3
		spec.Tasks = append(spec.Tasks, Task{
			Name:         names[k],
			PeriodMillis: period,
			BudgetMillis: budget,
			PhaseMillis:  phase,
			Criticality:  next() % 3,
			JitterMillis: jitter,
			WCETCycles:   float64(next() % (budget * 1000)),
		})
	}
	return spec, policy
}
