// Package schedfeas is a sound static feasibility analyzer for the
// schedule space of a *randomized* cyclic executive — the second
// randomisation axis next to DSR's memory-layout randomisation
// (TaskShuffler++, arXiv:1911.07726; REORDER, arXiv:1806.01393). The
// paper's process derives "a timing bound for each software unit
// together with a scheduling of those software units"; once the
// executive draws a fresh schedule every major frame, that scheduling
// argument must cover every schedule the randomizer can emit, not one
// fixed window table.
//
// The package owns both halves of the contract:
//
//   - Draw (draw.go) is the seed-driven randomizer itself: given a task
//     set, a randomisation policy and a prng.Source it produces one
//     major frame's schedule, byte-deterministically per seed. The
//     randomized executive in internal/rtos runs exactly this code.
//
//   - Analyze (analyze.go) statically explores Draw's *entire* support:
//     it enumerates the randomizer's decision tree (segment selection ×
//     window order × slack-gap jitter, the latter characterised
//     symbolically as per-window start intervals), proves every
//     reachable schedule feasible — no overlap, every window inside its
//     period, criticality order, per-task release-jitter bounds, WCET
//     fits budget — or pinpoints a concrete violating draw, and reports
//     the schedule entropy and the per-task guessing entropy of
//     inter-arrival inference (the TaskShuffler++ metric).
//
// A Certificate is only issued when the whole support is feasible; the
// executive refuses construction without one and membership-checks
// every frame it draws against the certified support (the CI soundness
// gate replays that check over hundreds of seeded frames).
package schedfeas

import (
	"fmt"
	"sort"

	"dsr/internal/mem"
)

// Task is one schedulable unit of the randomized executive.
type Task struct {
	Name string `json:"name"`
	// PeriodMillis is the activation period. Every period must divide
	// FrameMillis and be a multiple of the shortest period (the base
	// segment the randomizer works in).
	PeriodMillis int `json:"period_millis"`
	// BudgetMillis is the partition window reserved per activation.
	BudgetMillis int `json:"budget_millis"`
	// PhaseMillis is the task's nominal offset within its period — the
	// deterministic baseline placement (sched.Fit FixedPhase offsets).
	// Release jitter is measured against k*Period + Phase.
	PhaseMillis int `json:"phase_millis"`
	// WCETCycles is the per-activation execution-time bound the window
	// must accommodate (pWCET quantile or static bound); 0 skips the
	// budget-fit check.
	WCETCycles float64 `json:"wcet_cycles,omitempty"`
	// Criticality orders tasks (higher = more critical): it fixes the
	// randomizer's placement priority and, when Spec.CritOrdered is
	// set, constrains intra-segment window order.
	Criticality int `json:"criticality"`
	// JitterMillis bounds the release jitter: every activation start
	// must satisfy |start - (k*Period + Phase)| <= JitterMillis.
	// -1 leaves the start unconstrained within the period interval.
	JitterMillis int `json:"jitter_millis"`
	// StackBoundBytes / StackBudgetBytes carry the PR-1 call-graph
	// stack analysis into the feasibility verdict: when both are set,
	// the static worst-case stack excursion must fit the partition's
	// stack allocation (randomising the schedule does not change the
	// layout randomisation's stack obligation). Zero disables the check.
	StackBoundBytes  int `json:"stack_bound_bytes,omitempty"`
	StackBudgetBytes int `json:"stack_budget_bytes,omitempty"`
}

// Spec is the task set plus the frame the executive cycles through.
type Spec struct {
	// FrameMillis is the major frame length.
	FrameMillis int `json:"frame_millis"`
	// CyclesPerMilli converts window budgets to cycle budgets (80_000
	// on the case study's 80 MHz LEON3).
	CyclesPerMilli mem.Cycles `json:"cycles_per_milli"`
	// CritOrdered, when set, requires that within any base segment no
	// window starts before a strictly more critical window of the same
	// segment — the mixed-criticality ordering constraint.
	CritOrdered bool `json:"crit_ordered,omitempty"`
	Tasks       []Task `json:"tasks"`
}

// Policy selects which randomisation the executive applies per major
// frame. The zero Policy is the deterministic baseline: every window at
// its nominal phase.
type Policy struct {
	// SegmentChoice lets a task whose period spans several base
	// segments draw which segment hosts each activation (slot
	// selection), instead of the segment containing its nominal phase.
	SegmentChoice bool `json:"segment_choice,omitempty"`
	// PermuteOrder draws a uniform permutation of the windows assigned
	// to a segment (within equal-criticality groups when the spec is
	// CritOrdered), instead of the canonical priority order.
	PermuteOrder bool `json:"permute_order,omitempty"`
	// SlotJitterMillis bounds the random idle gap inserted before each
	// window when a segment is laid out (offset jitter): each gap is
	// drawn uniformly from [0, min(SlotJitterMillis, remaining slack)].
	SlotJitterMillis int `json:"slot_jitter_millis,omitempty"`
}

// Deterministic reports whether the policy admits exactly the baseline
// schedule.
func (p Policy) Deterministic() bool {
	return !p.SegmentChoice && !p.PermuteOrder && p.SlotJitterMillis == 0
}

func (p Policy) String() string {
	if p.Deterministic() {
		return "det"
	}
	s := ""
	if p.SegmentChoice {
		s += "+slots"
	}
	if p.PermuteOrder {
		s += "+permute"
	}
	if p.SlotJitterMillis > 0 {
		s += fmt.Sprintf("+jitter%d", p.SlotJitterMillis)
	}
	return s[1:]
}

// PlacedWindow is one activation's window in a drawn frame schedule.
type PlacedWindow struct {
	Task string `json:"task"`
	// Activation is the within-frame activation index (0..Frame/Period-1).
	Activation  int `json:"activation"`
	StartMillis int `json:"start_millis"`
	// Segment is the base segment hosting the window.
	Segment int `json:"segment"`
	// BudgetMillis mirrors the task budget for convenience.
	BudgetMillis int `json:"budget_millis"`
}

// FrameSchedule is one major frame's drawn schedule, windows in
// ascending start order.
type FrameSchedule struct {
	Windows []PlacedWindow `json:"windows"`
}

// Violation describes one way a concrete schedule breaks the task-set
// constraints.
type Violation struct {
	Task       string `json:"task"`
	Activation int    `json:"activation"`
	Reason     string `json:"reason"`
	// Schedule is the offending frame schedule (set by the analyzer
	// when it pinpoints a reachable violating draw).
	Schedule *FrameSchedule `json:"schedule,omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s activation %d: %s", v.Task, v.Activation, v.Reason)
}

// task returns the named task and whether it exists.
func (s *Spec) task(name string) (Task, bool) {
	for _, t := range s.Tasks {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

// SegmentMillis is the base segment length: the shortest period.
func (s *Spec) SegmentMillis() int {
	min := 0
	for _, t := range s.Tasks {
		if min == 0 || t.PeriodMillis < min {
			min = t.PeriodMillis
		}
	}
	return min
}

// Segments is the number of base segments per major frame.
func (s *Spec) Segments() int {
	if sl := s.SegmentMillis(); sl > 0 {
		return s.FrameMillis / sl
	}
	return 0
}

// Activations returns how many activations the named task has per
// major frame.
func (s *Spec) Activations(t Task) int { return s.FrameMillis / t.PeriodMillis }

// Validate checks the spec's structural invariants. It returns every
// problem found (empty = valid).
func (s *Spec) Validate() []string {
	var errs []string
	add := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	if s.FrameMillis <= 0 {
		add("non-positive major frame %dms", s.FrameMillis)
	}
	if s.CyclesPerMilli <= 0 {
		add("non-positive clock rate %d cycles/ms", s.CyclesPerMilli)
	}
	if len(s.Tasks) == 0 {
		add("empty task set")
		return errs
	}
	seen := map[string]bool{}
	segLen := s.SegmentMillis()
	for _, t := range s.Tasks {
		if t.Name == "" {
			add("task with empty name")
			continue
		}
		if seen[t.Name] {
			add("duplicate task %q", t.Name)
		}
		seen[t.Name] = true
		if t.PeriodMillis <= 0 {
			add("task %q: non-positive period %dms", t.Name, t.PeriodMillis)
			continue
		}
		if t.BudgetMillis <= 0 {
			add("task %q: non-positive budget %dms", t.Name, t.BudgetMillis)
			continue
		}
		if t.BudgetMillis > t.PeriodMillis {
			add("task %q: budget %dms exceeds period %dms", t.Name, t.BudgetMillis, t.PeriodMillis)
		}
		if s.FrameMillis > 0 && s.FrameMillis%t.PeriodMillis != 0 {
			add("task %q: period %dms does not divide the %dms major frame", t.Name, t.PeriodMillis, s.FrameMillis)
		}
		if segLen > 0 && t.PeriodMillis%segLen != 0 {
			add("task %q: period %dms is not a multiple of the %dms base segment", t.Name, t.PeriodMillis, segLen)
		}
		if t.BudgetMillis > segLen && segLen > 0 {
			add("task %q: budget %dms exceeds the %dms base segment", t.Name, t.BudgetMillis, segLen)
		}
		if t.PhaseMillis < 0 || t.PhaseMillis+t.BudgetMillis > t.PeriodMillis {
			add("task %q: phase %dms leaves no room for the %dms budget in the %dms period",
				t.Name, t.PhaseMillis, t.BudgetMillis, t.PeriodMillis)
		}
		if t.JitterMillis < -1 {
			add("task %q: jitter bound %d (want >= -1)", t.Name, t.JitterMillis)
		}
		if t.WCETCycles < 0 {
			add("task %q: negative WCET bound", t.Name)
		}
		if t.StackBoundBytes < 0 || t.StackBudgetBytes < 0 {
			add("task %q: negative stack bound or budget", t.Name)
		}
	}
	return errs
}

// Check verifies a concrete frame schedule against the task-set
// constraints — the definition of the feasible set:
//
//  1. windows sorted, inside the frame, non-overlapping;
//  2. each task has exactly one activation per period interval, and
//     every window lies entirely within its activation's period;
//  3. per-task release jitter |start - (k*Period + Phase)| <= Jitter;
//  4. CritOrdered (when set): within a base segment, no window starts
//     before a strictly more critical window;
//  5. WCET fits the cycle budget of the window.
//
// It returns every violation found (nil = feasible).
func (s *Spec) Check(fs *FrameSchedule) []Violation {
	var vs []Violation
	bad := func(task string, act int, format string, args ...interface{}) {
		vs = append(vs, Violation{Task: task, Activation: act, Reason: fmt.Sprintf(format, args...)})
	}
	segLen := s.SegmentMillis()
	end := 0
	prev := ""
	seen := map[string]map[int]bool{}
	for i, w := range fs.Windows {
		t, ok := s.task(w.Task)
		if !ok {
			bad(w.Task, w.Activation, "not in the task set")
			continue
		}
		if w.BudgetMillis != t.BudgetMillis {
			bad(w.Task, w.Activation, "budget %dms != task budget %dms", w.BudgetMillis, t.BudgetMillis)
		}
		if w.StartMillis < 0 || w.StartMillis+t.BudgetMillis > s.FrameMillis {
			bad(w.Task, w.Activation, "window [%d,%d)ms outside the %dms frame",
				w.StartMillis, w.StartMillis+t.BudgetMillis, s.FrameMillis)
			continue
		}
		if i > 0 && w.StartMillis < end {
			bad(w.Task, w.Activation, "overlaps previous window (%s ends at %dms, start %dms)",
				prev, end, w.StartMillis)
		}
		end = w.StartMillis + t.BudgetMillis
		prev = w.Task
		if segLen > 0 && w.Segment != w.StartMillis/segLen {
			bad(w.Task, w.Activation, "segment %d does not contain start %dms", w.Segment, w.StartMillis)
		}
		// Period containment.
		acts := s.Activations(t)
		if w.Activation < 0 || w.Activation >= acts {
			bad(w.Task, w.Activation, "activation out of range [0,%d)", acts)
			continue
		}
		lo, hi := w.Activation*t.PeriodMillis, (w.Activation+1)*t.PeriodMillis
		if w.StartMillis < lo || w.StartMillis+t.BudgetMillis > hi {
			bad(w.Task, w.Activation, "window [%d,%d)ms escapes period interval [%d,%d)ms",
				w.StartMillis, w.StartMillis+t.BudgetMillis, lo, hi)
		}
		// Release jitter against the nominal phase.
		if t.JitterMillis >= 0 {
			nominal := w.Activation*t.PeriodMillis + t.PhaseMillis
			dev := w.StartMillis - nominal
			if dev < 0 {
				dev = -dev
			}
			if dev > t.JitterMillis {
				bad(w.Task, w.Activation, "release jitter %dms exceeds bound %dms (nominal %dms, start %dms)",
					dev, t.JitterMillis, nominal, w.StartMillis)
			}
		}
		// WCET fit.
		if t.WCETCycles > 0 && t.WCETCycles > float64(t.BudgetMillis)*float64(s.CyclesPerMilli) {
			bad(w.Task, w.Activation, "WCET %.0f cycles exceeds the %d-cycle window budget",
				t.WCETCycles, mem.Cycles(t.BudgetMillis)*s.CyclesPerMilli)
		}
		if seen[w.Task] == nil {
			seen[w.Task] = map[int]bool{}
		}
		if seen[w.Task][w.Activation] {
			bad(w.Task, w.Activation, "duplicate activation")
		}
		seen[w.Task][w.Activation] = true
	}
	// Completeness: one activation per task per period.
	for _, t := range s.Tasks {
		for k := 0; k < s.Activations(t); k++ {
			if !seen[t.Name][k] {
				bad(t.Name, k, "activation missing from the schedule")
			}
		}
	}
	// Criticality order within segments.
	if s.CritOrdered && segLen > 0 {
		// minCritSeen tracks the least criticality already started per
		// segment; criticality must be non-increasing within a segment.
		minCritSeen := map[int]int{}
		for _, w := range fs.Windows {
			t, ok := s.task(w.Task)
			if !ok {
				continue
			}
			if m, ok := minCritSeen[w.Segment]; ok && t.Criticality > m {
				bad(w.Task, w.Activation,
					"criticality %d window follows a less critical one in segment %d", t.Criticality, w.Segment)
			}
			if m, ok := minCritSeen[w.Segment]; !ok || t.Criticality < m {
				minCritSeen[w.Segment] = t.Criticality
			}
		}
	}
	return vs
}

// priorityOrder returns the task indices in the randomizer's placement
// order: decreasing criticality, then increasing period, then name.
func (s *Spec) priorityOrder() []int {
	idx := make([]int, len(s.Tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := s.Tasks[idx[a]], s.Tasks[idx[b]]
		if ta.Criticality != tb.Criticality {
			return ta.Criticality > tb.Criticality
		}
		if ta.PeriodMillis != tb.PeriodMillis {
			return ta.PeriodMillis < tb.PeriodMillis
		}
		return ta.Name < tb.Name
	})
	return idx
}

// Equal reports whether two specs describe the same task set (used by
// the executive to verify a certificate matches its configuration).
func (s *Spec) Equal(o *Spec) bool {
	if s.FrameMillis != o.FrameMillis || s.CyclesPerMilli != o.CyclesPerMilli ||
		s.CritOrdered != o.CritOrdered || len(s.Tasks) != len(o.Tasks) {
		return false
	}
	for i := range s.Tasks {
		if s.Tasks[i] != o.Tasks[i] {
			return false
		}
	}
	return true
}
