package schedfeas

import (
	"fmt"
	"math"
	"sort"

	"dsr/internal/analysis"
)

// pass is the diagnostic pass name, following the lint-pass convention.
const pass = "schedfeas"

// Config bounds the analyzer's enumeration. The analyzer is sound, not
// best-effort: when a cap is exceeded it refuses (Report.Refused) rather
// than sampling the space, exactly like the WCET analyzer's refusal
// discipline.
type Config struct {
	// MaxAssignments caps the number of stage-A segment-assignment
	// leaves explored exhaustively. 0 means 4096.
	MaxAssignments int
	// MaxOrders caps the number of window orders enumerated per
	// segment. 0 means 120 (5!).
	MaxOrders int
	// MaxViolations caps how many pinpointed violating draws are
	// collected before the search stops recording (the verdict is
	// already infeasible). 0 means 8.
	MaxViolations int
}

func (c Config) maxAssignments() int {
	if c.MaxAssignments > 0 {
		return c.MaxAssignments
	}
	return 4096
}

func (c Config) maxOrders() int {
	if c.MaxOrders > 0 {
		return c.MaxOrders
	}
	return 120
}

func (c Config) maxViolations() int {
	if c.MaxViolations > 0 {
		return c.MaxViolations
	}
	return 8
}

// TaskReport is the per-task inference-resistance verdict: how hard the
// TaskShuffler++ adversary — one inferring a task's arrival offsets from
// observation — has to work against this policy.
type TaskReport struct {
	Task string `json:"task"`
	// OffsetBits is the Shannon entropy (bits) of the task's start
	// offset within its period, aggregated over activations and draws.
	OffsetBits float64 `json:"offset_bits"`
	// GuessingEntropy is the expected number of guesses an optimal
	// adversary needs to hit the realised offset (1 for a deterministic
	// schedule) — the guessing-entropy metric of TaskShuffler++.
	GuessingEntropy float64 `json:"guessing_entropy"`
	// DistinctOffsets counts the reachable start offsets.
	DistinctOffsets int `json:"distinct_offsets"`
}

// SupportInterval is one certified start-time range: in every reachable
// schedule, the window of (Task, Activation) starts within one of its
// intervals.
type SupportInterval struct {
	Task       string `json:"task"`
	Activation int    `json:"activation"`
	// LoMillis..HiMillis is the inclusive start-time range.
	LoMillis int `json:"lo_millis"`
	HiMillis int `json:"hi_millis"`
}

// Certificate is the analyzer's proof object: issued only when the
// randomizer's entire support is feasible. The randomized executive
// refuses construction without one and checks every drawn frame against
// it via Contains.
type Certificate struct {
	Spec        Spec    `json:"spec"`
	Policy      Policy  `json:"policy"`
	EntropyBits float64 `json:"entropy_bits"`
	// Support lists, per (task, activation), the union of start-time
	// intervals reachable by the randomizer. Membership is checked
	// marginally per window — a sound over-approximation of the joint
	// support (every drawable schedule passes; a hand-built schedule
	// mixing extremes from different draws may also pass).
	Support []SupportInterval `json:"support"`
}

// Contains reports whether fs is feasible and inside the certified
// support; nil means yes.
func (c *Certificate) Contains(fs *FrameSchedule) error {
	if vs := c.Spec.Check(fs); len(vs) > 0 {
		return fmt.Errorf("schedfeas: schedule violates the task-set constraints: %s", vs[0])
	}
	for _, w := range fs.Windows {
		ok := false
		for _, s := range c.Support {
			if s.Task == w.Task && s.Activation == w.Activation &&
				w.StartMillis >= s.LoMillis && w.StartMillis <= s.HiMillis {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("schedfeas: %s activation %d start %dms outside the certified support",
				w.Task, w.Activation, w.StartMillis)
		}
	}
	return nil
}

// Report is the analyzer's verdict over the whole randomized-schedule
// space.
type Report struct {
	Spec   Spec   `json:"spec"`
	Policy Policy `json:"policy"`
	// Feasible is true when every schedule the randomizer can draw
	// satisfies the task-set constraints (and the enumeration was not
	// refused).
	Feasible bool `json:"feasible"`
	// Refused is true when the assignment or order space exceeded the
	// configured caps; the analyzer then refuses soundly instead of
	// sampling, and no certificate is issued.
	Refused bool `json:"refused,omitempty"`
	// Assignments counts the stage-A segment-assignment leaves.
	Assignments int `json:"assignments"`
	// Schedules counts the distinct reachable schedules (draws map
	// bijectively onto schedules: distinct segment assignments, window
	// orders or cumulative-gap vectors each produce distinct start
	// vectors).
	Schedules float64 `json:"schedules"`
	// EntropyBits is the Shannon entropy of the schedule distribution —
	// the schedule-randomisation counterpart of the layout entropy the
	// DSR side reports.
	EntropyBits float64                `json:"entropy_bits"`
	Tasks       []TaskReport           `json:"tasks"`
	Violations  []Violation            `json:"violations,omitempty"`
	Diags       []analysis.Diagnostic  `json:"diags,omitempty"`
	// Cert is the feasibility certificate, non-nil exactly when
	// Feasible.
	Cert *Certificate `json:"certificate,omitempty"`
}

func (r *Report) diagf(sev analysis.Severity, format string, args ...interface{}) {
	r.Diags = append(r.Diags, analysis.Diagnostic{
		Pass: pass, Sev: sev, Index: -1, Msg: fmt.Sprintf(format, args...),
	})
}

// Analyze statically explores the entire space of schedules Draw can
// emit for (spec, policy) and proves it feasible or pinpoints a
// reachable violating draw. It never fails: structural problems are
// reported as diagnostics on an infeasible report.
//
// The exploration mirrors Draw exactly. Stage-A segment assignments are
// enumerated exhaustively (the tree is small: one draw per activation,
// capped by Config.MaxAssignments with sound refusal). Per leaf, each
// segment's window orders are enumerated (capped per segment), and the
// gap-packing stage is characterised symbolically: after i gap draws
// bounded by J with total slack S, the cumulative gap C_i ranges over
// exactly [0, min((i+1)*J, S)] — every integer in between is reachable —
// so the window at position i starts in [base+prefix_i, base+prefix_i +
// min((i+1)*J, S)]. Jitter-bound checks are evaluated on those interval
// extremes; period containment, overlap-freedom, frame containment and
// criticality order hold by construction of the gap-packing layout and
// are re-verified on every pinpointed schedule via Spec.Check (and, in
// the soundness gate, on every simulated draw).
func Analyze(spec *Spec, policy Policy, cfg Config) *Report {
	rep := &Report{Spec: *spec, Policy: policy}
	if errs := spec.Validate(); len(errs) > 0 {
		for _, e := range errs {
			rep.diagf(analysis.Error, "invalid spec: %s", e)
		}
		return rep
	}
	if policy.SlotJitterMillis < 0 {
		rep.diagf(analysis.Error, "invalid policy: negative slot jitter %d", policy.SlotJitterMillis)
		return rep
	}
	a := &analyzer{
		spec:   spec,
		policy: policy,
		cfg:    cfg,
		rep:    rep,
		segLen: spec.SegmentMillis(),
		used:   make([]int, spec.Segments()),
		assign: make([][]winRef, spec.Segments()),
		supp:   map[supKey][][2]int{},
		hist:   map[string]map[int]float64{},
		gaps:   map[[2]int]*gapInfo{},
	}
	for _, ti := range spec.priorityOrder() {
		t := spec.Tasks[ti]
		for k := 0; k < spec.Activations(t); k++ {
			a.order = append(a.order, winRef{task: ti, act: k})
		}
	}

	// Per-task resource checks are draw-independent: the WCET bound and
	// the static stack bound must fit the window budget and stack
	// allocation in *every* schedule, randomized or not.
	for _, t := range spec.Tasks {
		if budget := float64(t.BudgetMillis) * float64(spec.CyclesPerMilli); t.WCETCycles > budget {
			rep.diagf(analysis.Error, "task %q: WCET %.0f cycles exceeds the %.0f-cycle window budget",
				t.Name, t.WCETCycles, budget)
			rep.Violations = append(rep.Violations, Violation{
				Task: t.Name, Activation: -1,
				Reason: fmt.Sprintf("WCET %.0f cycles exceeds the %.0f-cycle window budget", t.WCETCycles, budget),
			})
		}
		if t.StackBoundBytes > 0 && t.StackBudgetBytes > 0 && t.StackBoundBytes > t.StackBudgetBytes {
			rep.diagf(analysis.Error, "task %q: stack bound %dB exceeds the %dB partition allocation",
				t.Name, t.StackBoundBytes, t.StackBudgetBytes)
			rep.Violations = append(rep.Violations, Violation{
				Task: t.Name, Activation: -1,
				Reason: fmt.Sprintf("stack bound %dB exceeds the %dB allocation", t.StackBoundBytes, t.StackBudgetBytes),
			})
		}
	}

	if policy.Deterministic() {
		a.detLeaf()
	} else {
		a.dfs(0, 1, 0)
	}

	if a.refused {
		rep.Refused = true
		rep.diagf(analysis.Warning,
			"refused: enumeration exceeds the configured caps (%d assignments, %d orders/segment) — raise Config limits or shrink the policy",
			cfg.maxAssignments(), cfg.maxOrders())
	}
	rep.Assignments = a.leaves
	rep.Schedules = a.schedules
	rep.EntropyBits = a.entropyBits
	rep.Feasible = !rep.Refused && len(rep.Violations) == 0
	rep.Tasks = a.taskReports()
	if rep.Feasible {
		rep.Cert = &Certificate{
			Spec:        *spec,
			Policy:      policy,
			EntropyBits: rep.EntropyBits,
			Support:     a.supportIntervals(),
		}
	}
	return rep
}

type supKey struct {
	task string
	act  int
}

type analyzer struct {
	spec   *Spec
	policy Policy
	cfg    Config
	rep    *Report
	segLen int
	order  []winRef // flattened (task, activation) draw order
	used   []int
	assign [][]winRef

	leaves      int
	schedules   float64
	entropyBits float64
	refused     bool

	supp map[supKey][][2]int
	hist map[string]map[int]float64
	gaps map[[2]int]*gapInfo
}

// violate records a pinpointed violation (bounded by MaxViolations).
func (a *analyzer) violate(v Violation) {
	if len(a.rep.Violations) < a.cfg.maxViolations() {
		a.rep.Violations = append(a.rep.Violations, v)
	}
}

func (a *analyzer) addSupport(task string, act, lo, hi int) {
	k := supKey{task, act}
	a.supp[k] = append(a.supp[k], [2]int{lo, hi})
}

func (a *analyzer) addMass(task string, offset int, w float64) {
	h := a.hist[task]
	if h == nil {
		h = map[int]float64{}
		a.hist[task] = h
	}
	h[offset] += w
}

// detLeaf analyses the single deterministic schedule.
func (a *analyzer) detLeaf() {
	fs := nominalSchedule(a.spec)
	a.leaves = 1
	a.schedules = 1
	for _, v := range a.spec.Check(fs) {
		v.Schedule = fs
		a.violate(v)
	}
	for _, w := range fs.Windows {
		t, _ := a.spec.task(w.Task)
		a.addSupport(w.Task, w.Activation, w.StartMillis, w.StartMillis)
		a.addMass(w.Task, w.StartMillis-w.Activation*t.PeriodMillis, 1)
	}
}

// dfs enumerates stage-A segment assignments, mirroring drawAssignment.
func (a *analyzer) dfs(i int, prob, pathBits float64) {
	if a.refused {
		return
	}
	if i == len(a.order) {
		a.leaves++
		if a.leaves > a.cfg.maxAssignments() {
			a.refused = true
			return
		}
		a.leaf(prob, pathBits)
		return
	}
	r := a.order[i]
	t := a.spec.Tasks[r.task]
	cands := candidateSegments(a.spec, a.policy, t, r.act, a.used)
	if len(cands) == 0 {
		// Draw would error here at runtime: a reachable dead-end is an
		// infeasibility of the (spec, policy) pair.
		a.violate(Violation{
			Task: t.Name, Activation: r.act,
			Reason: "randomizer dead-end: no segment with remaining capacity can host the window",
		})
		return
	}
	bits := math.Log2(float64(len(cands)))
	for _, seg := range cands {
		a.used[seg] += t.BudgetMillis
		a.assign[seg] = append(a.assign[seg], r)
		a.dfs(i+1, prob/float64(len(cands)), pathBits+bits)
		a.assign[seg] = a.assign[seg][:len(a.assign[seg])-1]
		a.used[seg] -= t.BudgetMillis
	}
}

// leaf analyses one complete segment assignment.
func (a *analyzer) leaf(prob, pathBits float64) {
	totalBits := pathBits
	count := 1.0
	for seg := range a.assign {
		refs := a.assign[seg]
		if len(refs) == 0 {
			continue
		}
		segBits, segCount, ok := a.segment(seg, refs, prob)
		if !ok {
			return
		}
		totalBits += segBits
		count *= segCount
	}
	a.entropyBits += prob * totalBits
	a.schedules += count
}

// segment analyses one segment of one leaf: order enumeration plus the
// symbolic gap characterisation. Returns the segment's entropy
// contribution in bits and its schedule count, or ok=false on refusal.
func (a *analyzer) segment(seg int, refs []winRef, prob float64) (bits, count float64, ok bool) {
	groups := orderGroups(a.spec, refs)
	norders := 1
	if a.policy.PermuteOrder {
		for _, g := range groups {
			for n := g[1] - g[0]; n > 1; n-- {
				norders *= n
				if norders > a.cfg.maxOrders() {
					a.refused = true
					return 0, 0, false
				}
			}
		}
	}
	sum := 0
	for _, r := range refs {
		sum += a.spec.Tasks[r.task].BudgetMillis
	}
	slack := a.segLen - sum
	gi := a.gapInfo(len(refs), slack)
	orderWeight := prob / float64(norders)

	a.forEachOrder(refs, groups, func(order []winRef) {
		base := seg * a.segLen
		prefix := 0
		for pos, r := range order {
			t := a.spec.Tasks[r.task]
			hiC := slack
			if j := (pos + 1) * a.policy.SlotJitterMillis; j < hiC {
				hiC = j
			}
			lo := base + prefix
			hi := lo + hiC
			if t.JitterMillis >= 0 {
				nominal := r.act*t.PeriodMillis + t.PhaseMillis
				if lo < nominal-t.JitterMillis {
					a.violate(Violation{
						Task: t.Name, Activation: r.act,
						Reason: fmt.Sprintf("release jitter %dms exceeds bound %dms (nominal %dms, reachable start %dms)",
							nominal-lo, t.JitterMillis, nominal, lo),
						Schedule: a.materialize(seg, order, pos, 0),
					})
				}
				if hi > nominal+t.JitterMillis {
					a.violate(Violation{
						Task: t.Name, Activation: r.act,
						Reason: fmt.Sprintf("release jitter %dms exceeds bound %dms (nominal %dms, reachable start %dms)",
							hi-nominal, t.JitterMillis, nominal, hi),
						Schedule: a.materialize(seg, order, pos, hiC),
					})
				}
			}
			a.addSupport(t.Name, r.act, lo, hi)
			for c, p := range gi.cum[pos] {
				if p > 0 {
					a.addMass(t.Name, lo+c-r.act*t.PeriodMillis, orderWeight*p)
				}
			}
			prefix += t.BudgetMillis
		}
	})
	return math.Log2(float64(norders)) + gi.bits, float64(norders) * gi.count, true
}

// forEachOrder enumerates every window order the permuter can draw:
// the canonical order when the policy does not permute, otherwise all
// permutations within each group (criticality runs under CritOrdered,
// the whole segment otherwise), composed across groups.
func (a *analyzer) forEachOrder(refs []winRef, groups [][2]int, fn func([]winRef)) {
	if !a.policy.PermuteOrder {
		fn(refs)
		return
	}
	order := append([]winRef(nil), refs...)
	var rec func(g int)
	rec = func(g int) {
		if g == len(groups) {
			fn(order)
			return
		}
		lo, hi := groups[g][0], groups[g][1]
		var perm func(i int)
		perm = func(i int) {
			if i == hi {
				rec(g + 1)
				return
			}
			for j := i; j < hi; j++ {
				order[i], order[j] = order[j], order[i]
				perm(i + 1)
				order[i], order[j] = order[j], order[i]
			}
		}
		perm(lo)
	}
	rec(0)
}

// materialize builds the concrete violating schedule: the current
// assignment with canonical orders and zero gaps everywhere, except the
// violating segment which uses the given order and the greedy gap
// vector reaching cumulative gap target at position pos — the exact
// draw the report pinpoints.
func (a *analyzer) materialize(vseg int, vorder []winRef, pos, target int) *FrameSchedule {
	var ws []PlacedWindow
	for seg := range a.assign {
		refs := a.assign[seg]
		if len(refs) == 0 {
			continue
		}
		ord := refs
		gaps := make([]int, len(refs))
		if seg == vseg {
			ord = vorder
			rem := target
			for j := 0; j <= pos && j < len(gaps) && rem > 0; j++ {
				g := a.policy.SlotJitterMillis
				if g > rem {
					g = rem
				}
				gaps[j] = g
				rem -= g
			}
		}
		cursor := seg * a.segLen
		for j, r := range ord {
			t := a.spec.Tasks[r.task]
			cursor += gaps[j]
			ws = append(ws, PlacedWindow{
				Task:         t.Name,
				Activation:   r.act,
				StartMillis:  cursor,
				Segment:      seg,
				BudgetMillis: t.BudgetMillis,
			})
			cursor += t.BudgetMillis
		}
	}
	sortWindows(ws)
	return &FrameSchedule{Windows: ws}
}

// gapInfo is the symbolic characterisation of the gap-packing draws for
// a segment with m windows and the given slack: the distribution of the
// cumulative gap before each window, the Shannon entropy of the gap
// vector and the number of distinct gap vectors. It depends only on
// (m, slack, J), so it is memoised across leaves and orders.
type gapInfo struct {
	// cum[i][c] = P(cumulative gap before window i equals c).
	cum   [][]float64
	bits  float64
	count float64
}

func (a *analyzer) gapInfo(m, slack int) *gapInfo {
	key := [2]int{m, slack}
	if gi, ok := a.gaps[key]; ok {
		return gi
	}
	gi := &gapInfo{}
	j := a.policy.SlotJitterMillis
	prob := []float64{1}          // P(cumulative = c) before the next draw
	cnt := []float64{1}           // #gap prefixes reaching cumulative c
	for i := 0; i < m; i++ {
		nextP := make([]float64, slack+1)
		nextC := make([]float64, slack+1)
		for c := 0; c < len(prob); c++ {
			p := prob[c]
			if p == 0 && cnt[c] == 0 {
				continue
			}
			n := slack - c
			if j < n {
				n = j
			}
			n++ // choices: gap in [0, min(J, slack-c)]
			gi.bits += p * math.Log2(float64(n))
			for g := 0; g < n; g++ {
				nextP[c+g] += p / float64(n)
				nextC[c+g] += cnt[c]
			}
		}
		gi.cum = append(gi.cum, nextP)
		prob, cnt = nextP, nextC
	}
	gi.count = 0
	for _, c := range cnt {
		gi.count += c
	}
	if m == 0 {
		gi.count = 1
	}
	a.gaps[key] = gi
	return gi
}

// taskReports folds the offset histograms into the per-task
// inference-resistance metrics, in spec task order.
func (a *analyzer) taskReports() []TaskReport {
	var out []TaskReport
	for _, t := range a.spec.Tasks {
		tr := TaskReport{Task: t.Name}
		h := a.hist[t.Name]
		// Fold in sorted offset order: float accumulation must not
		// depend on map iteration, or two Analyze calls on the same spec
		// would disagree in the last ULP of the entropy metrics.
		offs := make([]int, 0, len(h))
		for off := range h {
			offs = append(offs, off)
		}
		sort.Ints(offs)
		var total float64
		for _, off := range offs {
			total += h[off]
		}
		if total > 0 {
			ps := make([]float64, 0, len(h))
			for _, off := range offs {
				if p := h[off]; p > 0 {
					ps = append(ps, p/total)
				}
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(ps)))
			for i, p := range ps {
				tr.GuessingEntropy += float64(i+1) * p
				tr.OffsetBits -= p * math.Log2(p)
			}
			tr.DistinctOffsets = len(ps)
		}
		out = append(out, tr)
	}
	return out
}

// supportIntervals merges the collected per-(task, activation) start
// intervals into sorted disjoint unions.
func (a *analyzer) supportIntervals() []SupportInterval {
	keys := make([]supKey, 0, len(a.supp))
	for k := range a.supp {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].task != keys[j].task {
			return keys[i].task < keys[j].task
		}
		return keys[i].act < keys[j].act
	})
	var out []SupportInterval
	for _, k := range keys {
		spans := a.supp[k]
		sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
		merged := spans[:1]
		for _, s := range spans[1:] {
			last := &merged[len(merged)-1]
			if s[0] <= last[1]+1 {
				if s[1] > last[1] {
					last[1] = s[1]
				}
				continue
			}
			merged = append(merged, s)
		}
		for _, s := range merged {
			out = append(out, SupportInterval{
				Task: k.task, Activation: k.act, LoMillis: s[0], HiMillis: s[1],
			})
		}
	}
	return out
}
