package schedfeas

import (
	"math"
	"testing"

	"dsr/internal/prng"
	"dsr/internal/sched"
)

func TestAnalyzeDetBaseline(t *testing.T) {
	rep := Analyze(caseStudySpec(), Policy{}, Config{})
	if !rep.Feasible {
		t.Fatalf("det baseline infeasible: %v / %v", rep.Violations, rep.Diags)
	}
	if rep.EntropyBits != 0 || rep.Schedules != 1 || rep.Assignments != 1 {
		t.Errorf("det entropy=%f schedules=%f assignments=%d, want 0/1/1",
			rep.EntropyBits, rep.Schedules, rep.Assignments)
	}
	for _, tr := range rep.Tasks {
		if tr.GuessingEntropy != 1 || tr.DistinctOffsets != 1 || tr.OffsetBits != 0 {
			t.Errorf("%s: det inference metrics %+v, want GE=1/offsets=1/bits=0", tr.Task, tr)
		}
	}
	if rep.Cert == nil {
		t.Fatal("feasible report without certificate")
	}
	// The certificate accepts the nominal schedule and nothing shifted.
	if err := rep.Cert.Contains(nominalSchedule(caseStudySpec())); err != nil {
		t.Errorf("nominal rejected: %v", err)
	}
}

func TestAnalyzeFullPolicyFeasible(t *testing.T) {
	spec := caseStudySpec()
	rep := Analyze(spec, fullPolicy(), Config{})
	if !rep.Feasible {
		t.Fatalf("full policy infeasible: %v / %v", rep.Violations, rep.Diags)
	}
	// Control draws one of 10 segments; the shared segment permutes 2
	// windows; every segment gap-jitters — well over 10 bits total.
	if rep.EntropyBits < 10 {
		t.Errorf("entropy %f bits, expected > 10", rep.EntropyBits)
	}
	if rep.Assignments != 10 {
		t.Errorf("assignments=%d, want 10 (control segment choice)", rep.Assignments)
	}
	if rep.Schedules <= 1 {
		t.Errorf("schedules=%f, want many", rep.Schedules)
	}
	for _, tr := range rep.Tasks {
		if tr.GuessingEntropy <= 1 || tr.DistinctOffsets <= 1 {
			t.Errorf("%s: randomized policy but GE=%f offsets=%d",
				tr.Task, tr.GuessingEntropy, tr.DistinctOffsets)
		}
		// Control roams the whole frame: far harder to guess than the
		// jitter-bounded processing task.
		if tr.Task == "control" && tr.GuessingEntropy < 50 {
			t.Errorf("control GE=%f, expected inter-arrival inference to be hard", tr.GuessingEntropy)
		}
	}
}

// The analyzer's support must cover every schedule Draw emits (the
// soundness direction the CI gate re-checks at scale).
func TestAnalyzeSupportCoversDraws(t *testing.T) {
	spec := caseStudySpec()
	for _, pol := range []Policy{
		{},
		{SlotJitterMillis: 40},
		{PermuteOrder: true},
		{SegmentChoice: true},
		fullPolicy(),
	} {
		rep := Analyze(spec, pol, Config{})
		if !rep.Feasible {
			t.Fatalf("%v: infeasible: %v", pol, rep.Violations)
		}
		for seed := uint64(0); seed < 100; seed++ {
			fs, err := Draw(spec, pol, prng.NewMWC(seed))
			if err != nil {
				t.Fatalf("%v seed %d: %v", pol, seed, err)
			}
			if err := rep.Cert.Contains(fs); err != nil {
				t.Fatalf("%v seed %d: drawn schedule outside certified support: %v", pol, seed, err)
			}
		}
	}
}

func TestAnalyzePinpointsJitterViolation(t *testing.T) {
	spec := caseStudySpec()
	// Processing tolerates 40ms of jitter; behind a permuted control
	// window its start can reach base+40, so a 29ms bound must fail.
	spec.Tasks[1].JitterMillis = 29
	rep := Analyze(spec, fullPolicy(), Config{})
	if rep.Feasible {
		t.Fatal("jitter-infeasible policy declared feasible")
	}
	if rep.Cert != nil {
		t.Fatal("infeasible report issued a certificate")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Task != "processing" {
			continue
		}
		found = true
		if v.Schedule == nil {
			t.Fatal("violation without a pinpointed schedule")
		}
		// The pinpointed draw must actually violate the constraints —
		// the property the fuzzer replays at scale.
		if vs := spec.Check(v.Schedule); len(vs) == 0 {
			t.Fatalf("pinpointed schedule passes Check: %+v", v.Schedule)
		}
	}
	if !found {
		t.Fatalf("no processing violation: %v", rep.Violations)
	}
}

func TestAnalyzeDeadEndInfeasible(t *testing.T) {
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1000,
		Tasks: []Task{
			{Name: "a", PeriodMillis: 100, BudgetMillis: 40, PhaseMillis: 0, JitterMillis: -1},
			{Name: "b", PeriodMillis: 100, BudgetMillis: 40, PhaseMillis: 40, JitterMillis: -1},
			{Name: "c", PeriodMillis: 100, BudgetMillis: 40, PhaseMillis: 60, JitterMillis: -1},
		},
	}
	rep := Analyze(spec, Policy{SlotJitterMillis: 5}, Config{})
	if rep.Feasible {
		t.Fatal("dead-end randomizer declared feasible")
	}
	// The det baseline overlaps too (120ms of windows in 100ms) — Check
	// must catch it on the nominal schedule.
	det := Analyze(spec, Policy{}, Config{})
	if det.Feasible {
		t.Fatal("overlapping nominal schedule declared feasible")
	}
}

func TestAnalyzeWCETAndStackViolations(t *testing.T) {
	spec := caseStudySpec()
	spec.Tasks[0].WCETCycles = 2_500_000 // > 30ms * 80k = 2.4M
	rep := Analyze(spec, Policy{}, Config{})
	if rep.Feasible {
		t.Fatal("WCET overrun declared feasible")
	}

	spec = caseStudySpec()
	spec.Tasks[1].StackBoundBytes = 4096
	spec.Tasks[1].StackBudgetBytes = 2048
	rep = Analyze(spec, Policy{}, Config{})
	if rep.Feasible {
		t.Fatal("stack overrun declared feasible")
	}

	// Unset budgets skip the stack check.
	spec = caseStudySpec()
	spec.Tasks[1].StackBoundBytes = 4096
	if rep = Analyze(spec, Policy{}, Config{}); !rep.Feasible {
		t.Fatal("stack check fired without a budget")
	}
}

func TestAnalyzeRefusesOverCap(t *testing.T) {
	rep := Analyze(caseStudySpec(), fullPolicy(), Config{MaxAssignments: 4})
	if !rep.Refused || rep.Feasible || rep.Cert != nil {
		t.Fatalf("cap exceeded but refused=%v feasible=%v cert=%v",
			rep.Refused, rep.Feasible, rep.Cert != nil)
	}
	// Order cap: 4 same-criticality windows in one segment = 24 orders.
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1000,
		Tasks: []Task{
			{Name: "a", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 0, JitterMillis: -1},
			{Name: "b", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 10, JitterMillis: -1},
			{Name: "c", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 20, JitterMillis: -1},
			{Name: "d", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 30, JitterMillis: -1},
		},
	}
	rep = Analyze(spec, Policy{PermuteOrder: true}, Config{MaxOrders: 6})
	if !rep.Refused {
		t.Fatal("24 orders under a cap of 6 not refused")
	}
}

func TestAnalyzeCritOrderShrinksEntropy(t *testing.T) {
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1000,
		Tasks: []Task{
			{Name: "hi", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 0, Criticality: 1, JitterMillis: -1},
			{Name: "lo", PeriodMillis: 100, BudgetMillis: 10, PhaseMillis: 10, Criticality: 0, JitterMillis: -1},
		},
	}
	free := Analyze(spec, Policy{PermuteOrder: true}, Config{})
	if !free.Feasible {
		t.Fatalf("free permute infeasible: %v", free.Violations)
	}
	spec.CritOrdered = true
	ordered := Analyze(spec, Policy{PermuteOrder: true}, Config{})
	if !ordered.Feasible {
		t.Fatalf("crit-ordered permute infeasible: %v", ordered.Violations)
	}
	// Two singleton criticality groups leave exactly one order: the
	// constraint removes the permutation's 1 bit.
	if got, want := free.EntropyBits-ordered.EntropyBits, 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("crit order removed %f bits, want %f", got, want)
	}
	// And every crit-ordered draw keeps hi before lo.
	for seed := uint64(0); seed < 30; seed++ {
		fs, err := Draw(spec, Policy{PermuteOrder: true}, prng.NewMWC(seed))
		if err != nil {
			t.Fatal(err)
		}
		if fs.Windows[0].Task != "hi" {
			t.Fatalf("seed %d: crit order violated: %+v", seed, fs.Windows)
		}
	}
}

func TestAnalyzeJitterOnlyEntropy(t *testing.T) {
	// One 60ms task in a 100ms frame with free jitter: 41 equiprobable
	// starts, entropy log2(41), guessing entropy (41+1)/2.
	spec := &Spec{
		FrameMillis:    100,
		CyclesPerMilli: 1000,
		Tasks: []Task{
			{Name: "solo", PeriodMillis: 100, BudgetMillis: 60, PhaseMillis: 0, JitterMillis: -1},
		},
	}
	rep := Analyze(spec, Policy{SlotJitterMillis: 100}, Config{})
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep.Violations)
	}
	if want := math.Log2(41); math.Abs(rep.EntropyBits-want) > 1e-9 {
		t.Errorf("entropy=%f, want %f", rep.EntropyBits, want)
	}
	if rep.Schedules != 41 {
		t.Errorf("schedules=%f, want 41", rep.Schedules)
	}
	tr := rep.Tasks[0]
	if want := 21.0; math.Abs(tr.GuessingEntropy-want) > 1e-9 || tr.DistinctOffsets != 41 {
		t.Errorf("GE=%f offsets=%d, want 21/41", tr.GuessingEntropy, tr.DistinctOffsets)
	}
}

// Acceptance: the analyzer's det-baseline verdict coincides with
// sched.Check's schedulability verdict on the case-study task set, and
// both flip together when a WCET bound is inflated past its window.
func TestAnalyzeMatchesSchedCheck(t *testing.T) {
	tasks := []sched.Task{
		{Name: "control", PeriodMillis: 1000, WCETCycles: 280_279, WindowBudgetMillis: 30},
		{Name: "processing", PeriodMillis: 100, WCETCycles: 1_500_000, WindowBudgetMillis: 60},
	}
	const cpm = 80_000

	spec, err := SpecFromTasks(tasks, cpm)
	if err != nil {
		t.Fatal(err)
	}
	schedRep, err := sched.Check(tasks, cpm)
	if err != nil {
		t.Fatal(err)
	}
	feasRep := Analyze(spec, Policy{}, Config{})
	if feasRep.Feasible != schedRep.Schedulable {
		t.Fatalf("schedfeas=%v but sched.Check=%v", feasRep.Feasible, schedRep.Schedulable)
	}
	if !feasRep.Feasible {
		t.Fatal("case study must be feasible")
	}

	// Inflate the control WCET past its window: both analyses refuse.
	tasks[0].WCETCycles = 2_500_000
	spec, err = SpecFromTasks(tasks, cpm)
	if err != nil {
		t.Fatal(err)
	}
	schedRep, err = sched.Check(tasks, cpm)
	if err != nil {
		t.Fatal(err)
	}
	feasRep = Analyze(spec, Policy{}, Config{})
	if feasRep.Feasible != schedRep.Schedulable {
		t.Fatalf("inflated WCET: schedfeas=%v but sched.Check=%v", feasRep.Feasible, schedRep.Schedulable)
	}
	if feasRep.Feasible {
		t.Fatal("inflated WCET must be infeasible")
	}
}

func TestSpecFromTasksErrors(t *testing.T) {
	// No fixed phase exists for B in A(3,1)+B(4,2).
	if _, err := SpecFromTasks([]sched.Task{
		{Name: "A", PeriodMillis: 3, WCETCycles: 1, WindowBudgetMillis: 1},
		{Name: "B", PeriodMillis: 4, WCETCycles: 1, WindowBudgetMillis: 2},
	}, 1000); err == nil {
		t.Error("unpackable set accepted")
	}
	// Non-harmonic periods violate segment alignment.
	if _, err := SpecFromTasks([]sched.Task{
		{Name: "a", PeriodMillis: 25, WCETCycles: 1, WindowBudgetMillis: 5},
		{Name: "b", PeriodMillis: 40, WCETCycles: 1, WindowBudgetMillis: 5},
	}, 1000); err == nil {
		t.Error("non-harmonic periods accepted")
	}
}

func TestCertificateRejectsForeignStart(t *testing.T) {
	spec := caseStudySpec()
	rep := Analyze(spec, Policy{SlotJitterMillis: 5}, Config{})
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep.Violations)
	}
	fs, err := Draw(spec, Policy{SlotJitterMillis: 5}, prng.NewMWC(1))
	if err != nil {
		t.Fatal(err)
	}
	// Move control far outside the 5ms-jitter support (but still into a
	// feasibility-respecting slot): Contains must reject on support.
	moved := &FrameSchedule{Windows: append([]PlacedWindow(nil), fs.Windows...)}
	for i := range moved.Windows {
		if moved.Windows[i].Task == "control" {
			moved.Windows[i].StartMillis = 970
			moved.Windows[i].Segment = 9
		}
	}
	sortWindows(moved.Windows)
	if vs := spec.Check(moved); len(vs) > 0 {
		t.Fatalf("moved schedule should satisfy the raw constraints: %v", vs)
	}
	if err := rep.Cert.Contains(moved); err == nil {
		t.Fatal("start outside the certified support accepted")
	}
}
