package schedfeas

import (
	"fmt"
	"sort"

	"dsr/internal/prng"
)

// Draw produces one major frame's schedule from the policy's draw
// stream. It is the generative definition of the randomizer's support:
// the randomized executive in internal/rtos runs exactly this function
// every frame, and Analyze explores exactly this function's decision
// tree — there is one implementation to certify, not two to keep in
// sync.
//
// The draw works at millisecond granularity in two stages over base
// segments (segment length = shortest period, which every period is a
// multiple of):
//
//	Stage A — segment assignment. Tasks are visited in priority order
//	(decreasing criticality, then increasing period, then name); each
//	activation k draws a host segment among the segments of its period
//	interval that still have capacity (only the nominal segment — the
//	one containing k*Period+Phase — is eligible unless
//	Policy.SegmentChoice). The draw is taken with prng.Intn even when
//	a single candidate remains, so the stream shape depends only on
//	the spec and policy, never on earlier outcomes.
//
//	Stage B — per-segment layout. Each segment's windows are put in
//	canonical priority order, permuted if Policy.PermuteOrder (within
//	equal-criticality groups when the spec is CritOrdered), then
//	gap-packed from the segment base: before each window an idle gap
//	is drawn uniformly from [0, min(SlotJitterMillis, remaining
//	slack)] — again always drawing, even when the range is {0}.
//
// A fully deterministic policy consumes no randomness and returns the
// nominal schedule (every window at k*Period+Phase) — the exact det
// baseline sched.Fit's fixed-phase mode certifies.
//
// Draw fails when a dead-end is reached: some activation has no
// candidate segment left. Analyze treats every reachable dead-end as an
// infeasibility, so a certified (spec, policy) never errors here.
func Draw(spec *Spec, policy Policy, src prng.Source) (*FrameSchedule, error) {
	if errs := spec.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("schedfeas: invalid spec: %s", errs[0])
	}
	if policy.SlotJitterMillis < 0 {
		return nil, fmt.Errorf("schedfeas: negative slot jitter %d", policy.SlotJitterMillis)
	}
	if policy.Deterministic() {
		return nominalSchedule(spec), nil
	}
	assign, err := drawAssignment(spec, policy, src)
	if err != nil {
		return nil, err
	}
	var ws []PlacedWindow
	for seg, refs := range assign {
		if len(refs) == 0 {
			continue
		}
		ordered := orderRefs(spec, policy, refs, src)
		ws = append(ws, layoutSegment(spec, policy, seg, ordered, src)...)
	}
	sortWindows(ws)
	return &FrameSchedule{Windows: ws}, nil
}

// winRef identifies one (task, activation) window during drawing and
// analysis.
type winRef struct {
	task int // index into Spec.Tasks
	act  int
}

// nominalSchedule is the deterministic baseline: every activation at
// its phase.
func nominalSchedule(spec *Spec) *FrameSchedule {
	segLen := spec.SegmentMillis()
	var ws []PlacedWindow
	for _, t := range spec.Tasks {
		for k := 0; k < spec.Activations(t); k++ {
			start := k*t.PeriodMillis + t.PhaseMillis
			ws = append(ws, PlacedWindow{
				Task:         t.Name,
				Activation:   k,
				StartMillis:  start,
				Segment:      start / segLen,
				BudgetMillis: t.BudgetMillis,
			})
		}
	}
	sortWindows(ws)
	return &FrameSchedule{Windows: ws}
}

// candidateSegments lists the segments that may host activation k of t,
// given the per-segment budget already committed in used. Without
// SegmentChoice only the nominal segment is eligible; with it, any
// segment of the activation's period interval. Either way a segment
// must have capacity for the window's budget.
func candidateSegments(spec *Spec, policy Policy, t Task, k int, used []int) []int {
	segLen := spec.SegmentMillis()
	var cands []int
	if !policy.SegmentChoice {
		seg := (k*t.PeriodMillis + t.PhaseMillis) / segLen
		if used[seg]+t.BudgetMillis <= segLen {
			cands = append(cands, seg)
		}
		return cands
	}
	lo := k * t.PeriodMillis / segLen
	hi := (k + 1) * t.PeriodMillis / segLen
	for seg := lo; seg < hi; seg++ {
		if used[seg]+t.BudgetMillis <= segLen {
			cands = append(cands, seg)
		}
	}
	return cands
}

// drawAssignment runs stage A: one host segment per activation, in
// priority order.
func drawAssignment(spec *Spec, policy Policy, src prng.Source) ([][]winRef, error) {
	nseg := spec.Segments()
	used := make([]int, nseg)
	assign := make([][]winRef, nseg)
	for _, ti := range spec.priorityOrder() {
		t := spec.Tasks[ti]
		for k := 0; k < spec.Activations(t); k++ {
			cands := candidateSegments(spec, policy, t, k, used)
			if len(cands) == 0 {
				return nil, fmt.Errorf("schedfeas: dead-end draw: no segment can host %s activation %d",
					t.Name, k)
			}
			seg := cands[prng.Intn(src, len(cands))]
			used[seg] += t.BudgetMillis
			assign[seg] = append(assign[seg], winRef{task: ti, act: k})
		}
	}
	return assign, nil
}

// orderGroups partitions a segment's windows (which arrive in priority
// order, hence non-increasing criticality) into the runs the permuter
// may shuffle within: one run per criticality level when the spec is
// CritOrdered, a single run otherwise.
func orderGroups(spec *Spec, refs []winRef) [][2]int {
	if !spec.CritOrdered {
		return [][2]int{{0, len(refs)}}
	}
	var groups [][2]int
	start := 0
	for start < len(refs) {
		end := start + 1
		for end < len(refs) &&
			spec.Tasks[refs[end].task].Criticality == spec.Tasks[refs[start].task].Criticality {
			end++
		}
		groups = append(groups, [2]int{start, end})
		start = end
	}
	return groups
}

// orderRefs runs the ordering half of stage B: canonical priority order,
// permuted within the allowed groups when the policy asks for it.
func orderRefs(spec *Spec, policy Policy, refs []winRef, src prng.Source) []winRef {
	out := append([]winRef(nil), refs...)
	if !policy.PermuteOrder {
		return out
	}
	for _, g := range orderGroups(spec, refs) {
		n := g[1] - g[0]
		if n < 2 {
			continue
		}
		perm := make([]int, n)
		prng.PermInto(src, perm)
		for i := 0; i < n; i++ {
			out[g[0]+i] = refs[g[0]+perm[i]]
		}
	}
	return out
}

// layoutSegment runs the placement half of stage B: gap-packing from
// the segment base with bounded uniform idle gaps.
func layoutSegment(spec *Spec, policy Policy, seg int, refs []winRef, src prng.Source) []PlacedWindow {
	segLen := spec.SegmentMillis()
	base := seg * segLen
	sum := 0
	for _, r := range refs {
		sum += spec.Tasks[r.task].BudgetMillis
	}
	slack := segLen - sum
	cursor := base
	out := make([]PlacedWindow, 0, len(refs))
	for _, r := range refs {
		t := spec.Tasks[r.task]
		maxGap := slack
		if policy.SlotJitterMillis < maxGap {
			maxGap = policy.SlotJitterMillis
		}
		gap := prng.Intn(src, maxGap+1)
		cursor += gap
		slack -= gap
		out = append(out, PlacedWindow{
			Task:         t.Name,
			Activation:   r.act,
			StartMillis:  cursor,
			Segment:      seg,
			BudgetMillis: t.BudgetMillis,
		})
		cursor += t.BudgetMillis
	}
	return out
}

func sortWindows(ws []PlacedWindow) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].StartMillis != ws[j].StartMillis {
			return ws[i].StartMillis < ws[j].StartMillis
		}
		return ws[i].Task < ws[j].Task
	})
}
