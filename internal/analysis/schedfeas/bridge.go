package schedfeas

import (
	"fmt"

	"dsr/internal/mem"
	"dsr/internal/sched"
)

// SpecFromTasks lifts a sched task set into a schedfeas Spec: the major
// frame is the hyperperiod and the nominal phases come from the
// fixed-phase constructive fit (sched.Fit FixedPhase) — the det
// baseline a randomisation policy then perturbs. WCET and stack bounds
// carry over; criticality defaults to 0 and release jitter to
// unconstrained (callers refine both before analysing a randomized
// policy). It fails when no fixed-phase packing exists or when the
// periods violate the segment-alignment requirement (every period a
// multiple of the shortest).
func SpecFromTasks(tasks []sched.Task, cyclesPerMilli mem.Cycles) (*Spec, error) {
	plan, err := sched.Fit(tasks, sched.FixedPhase)
	if err != nil {
		return nil, err
	}
	if !plan.Packs {
		return nil, fmt.Errorf("schedfeas: no fixed-phase packing: task %q does not fit", plan.Failed)
	}
	spec := &Spec{FrameMillis: plan.HyperMillis, CyclesPerMilli: cyclesPerMilli}
	for _, t := range tasks {
		off, _ := plan.Offset(t.Name)
		spec.Tasks = append(spec.Tasks, Task{
			Name:             t.Name,
			PeriodMillis:     t.PeriodMillis,
			BudgetMillis:     t.WindowBudgetMillis,
			PhaseMillis:      off,
			WCETCycles:       t.WCETCycles,
			JitterMillis:     -1,
			StackBoundBytes:  t.StackBoundBytes,
			StackBudgetBytes: t.StackBudgetBytes,
		})
	}
	if errs := spec.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("schedfeas: %s", errs[0])
	}
	return spec, nil
}
