package analysis

import (
	"strings"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

func runPasses(p *prog.Program) []Diagnostic {
	return Run(p, DefaultPasses(), nil)
}

func hasDiag(ds []Diagnostic, pass string, sev Severity, substr string) bool {
	for _, d := range ds {
		if d.Pass == pass && d.Sev == sev && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func oneFunc(f *prog.Function) *prog.Program {
	p := &prog.Program{Name: "t", Entry: f.Name}
	p.Functions = append(p.Functions, f)
	return p
}

func TestReservedRegPassFlagsG6G7(t *testing.T) {
	f := prog.NewLeaf("f").
		MovI(isa.G6, 1).
		Mov(isa.O0, isa.G7).
		RetLeaf().
		MustBuild()
	ds := runPasses(oneFunc(f))
	if !hasDiag(ds, PassReservedReg, Error, "reserved") {
		t.Fatalf("no reserved-register error in %v", ds)
	}
	n := 0
	for _, d := range ds {
		if d.Pass == PassReservedReg {
			n++
		}
	}
	if n != 2 {
		t.Errorf("reserved-reg diagnostics=%d, want 2 (write of g6, read of g7)", n)
	}
}

func TestReservedRegPassExemptsDSRShapes(t *testing.T) {
	// The canonical dispatch and prologue sequences are the sanctioned
	// uses; the pass must stay clean on transformed output.
	f := &prog.Function{Name: "f", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Set, Rd: isa.G7, Sym: "__dsr_offsets"},
		{Op: isa.Ld, Rd: isa.G7, Rs1: isa.G7, Imm: 0},
		{Op: isa.SaveX, Imm: prog.MinFrame, Rs2: isa.G7},
		{Op: isa.Set, Rd: isa.G6, Sym: "__dsr_ftable"},
		{Op: isa.Ld, Rd: isa.G6, Rs1: isa.G6, Imm: 4},
		{Op: isa.CallR, Rs1: isa.G6},
		{Op: isa.Ret},
	}}
	ds := runPasses(oneFunc(f))
	for _, d := range ds {
		if d.Pass == PassReservedReg {
			t.Errorf("sanctioned DSR shape flagged: %s", d)
		}
	}
}

func TestRetShapePass(t *testing.T) {
	// Leaf using ret, non-leaf using retl, save not first, fall-off end.
	leaf := &prog.Function{Name: "leaf", Leaf: true, Code: []isa.Instr{
		{Op: isa.Ret},
	}}
	nonleaf := &prog.Function{Name: "nl", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Nop},
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.RetL},
	}}
	fall := &prog.Function{Name: "fall", Leaf: true, Code: []isa.Instr{
		{Op: isa.Nop},
	}}
	p := &prog.Program{Name: "t", Entry: "nl"}
	p.Functions = append(p.Functions, leaf, nonleaf, fall)
	ds := runPasses(p)
	for _, want := range []string{
		"leaf uses ret",
		"not the first instruction",
		"non-leaf uses retl",
		"does not start with its prologue save",
		"falls off the end",
	} {
		if !hasDiag(ds, PassRetShape, Error, want) {
			t.Errorf("missing ret-shape error %q in %v", want, ds)
		}
	}
}

func TestAlignmentPass(t *testing.T) {
	f := &prog.Function{Name: "f", Leaf: true, Code: []isa.Instr{
		{Op: isa.Ld, Rd: isa.O0, Rs1: isa.O1, Imm: 2},            // misaligned word
		{Op: isa.Ldub, Rd: isa.O0, Rs1: isa.O1, Imm: 3},          // bytes may be odd
		{Op: isa.RetL},
	}}
	ds := runPasses(oneFunc(f))
	if !hasDiag(ds, PassAlignment, Error, "not a multiple") {
		t.Error("misaligned word load not flagged")
	}
	for _, d := range ds {
		if d.Pass == PassAlignment && d.Index == 1 {
			t.Errorf("byte access flagged as misaligned: %s", d)
		}
	}
}

func TestFramePass(t *testing.T) {
	const frame = prog.MinFrame + 8
	f := &prog.Function{Name: "f", FrameSize: frame, Code: []isa.Instr{
		{Op: isa.Save, Imm: frame},
		{Op: isa.St, Rd: isa.L0, Rs1: isa.SP, Imm: 32},             // in the window save area
		{Op: isa.St, Rd: isa.L0, Rs1: isa.SP, Imm: -8},             // below %sp
		{Op: isa.St, Rd: isa.L0, Rs1: isa.SP, Imm: frame + 8},      // beyond the frame
		{Op: isa.St, Rd: isa.L0, Rs1: isa.SP, Imm: prog.LocalBase}, // fine
		{Op: isa.Ret},
	}}
	ds := runPasses(oneFunc(f))
	if !hasDiag(ds, PassFrame, Error, "window save area") {
		t.Error("save-area store not flagged")
	}
	if !hasDiag(ds, PassFrame, Error, "below %sp") {
		t.Error("below-sp store not flagged")
	}
	if !hasDiag(ds, PassFrame, Warning, "beyond the") {
		t.Error("out-of-frame store not flagged")
	}
	for _, d := range ds {
		if d.Pass == PassFrame && d.Index == 4 {
			t.Errorf("legal local store flagged: %s", d)
		}
	}

	short := &prog.Function{Name: "g", FrameSize: 64, Code: []isa.Instr{
		{Op: isa.Save, Imm: 64},
		{Op: isa.Ret},
	}}
	ds = runPasses(oneFunc(short))
	if !hasDiag(ds, PassFrame, Error, "minimum") {
		t.Error("sub-minimum frame not flagged")
	}
}

func TestSymbolsPass(t *testing.T) {
	f := &prog.Function{Name: "f", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Call, Sym: "nowhere"},
		{Op: isa.Set, Rd: isa.L0, Sym: "nodata"},
		{Op: isa.Bl, Disp: 40},
		{Op: isa.Ret},
	}}
	ds := runPasses(oneFunc(f))
	if !hasDiag(ds, PassSymbols, Error, "undefined function") {
		t.Error("unresolved call not flagged")
	}
	if !hasDiag(ds, PassSymbols, Error, "undefined symbol") {
		t.Error("unresolved set not flagged")
	}
	if !hasDiag(ds, PassSymbols, Error, "leaves the function") {
		t.Error("out-of-range branch not flagged")
	}
}

func TestUnreachableAndDeadStorePasses(t *testing.T) {
	f := &prog.Function{Name: "f", Leaf: true, Code: []isa.Instr{
		{Op: isa.Mov, Rd: isa.L0, UseImm: true, Imm: 1}, // dead: overwritten below
		{Op: isa.Mov, Rd: isa.L0, UseImm: true, Imm: 2},
		{Op: isa.RetL},
		{Op: isa.Nop}, // unreachable
	}}
	ds := runPasses(oneFunc(f))
	if !hasDiag(ds, PassUnreachable, Warning, "unreachable") {
		t.Error("unreachable nop not flagged")
	}
	if !hasDiag(ds, PassDeadStore, Warning, "never read") {
		t.Error("dead store not flagged")
	}
}

func TestRunSortsAndResolvesLines(t *testing.T) {
	f := prog.NewLeaf("f").
		MovI(isa.G6, 1).
		RetLeaf().
		MustBuild()
	lines := func(fn string, index int) (int, bool) { return 100 + index, true }
	ds := Run(oneFunc(f), DefaultPasses(), lines)
	for _, d := range ds {
		if d.Fn == "f" && d.Index >= 0 && d.Line != 100+d.Index {
			t.Errorf("line not resolved: %+v", d)
		}
	}
	for i := 1; i < len(ds); i++ {
		a, b := ds[i-1], ds[i]
		if a.Fn > b.Fn || (a.Fn == b.Fn && a.Index > b.Index) {
			t.Errorf("diagnostics not sorted: %v before %v", a, b)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Pass: "p", Sev: Error, Fn: "f", Index: 3, Line: 12, Msg: "boom"}
	s := d.String()
	for _, want := range []string{"error", "[p]", "f+3", "line 12", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
	if MaxSeverity([]Diagnostic{{Sev: Info}, {Sev: Warning}}) != Warning {
		t.Error("MaxSeverity wrong")
	}
	if !HasErrors([]Diagnostic{{Sev: Error}}) || HasErrors(nil) {
		t.Error("HasErrors wrong")
	}
}
