package analysis

import (
	"strings"
	"testing"

	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// aliasedProgram places caller and callee exactly one way apart in a
// tiny direct-mapped cache, the paper's pathological layout: every line
// of one evicts the corresponding line of the other.
func aliasedProgram(t *testing.T) (*prog.Program, loader.Placement, cache.Config) {
	t.Helper()
	p := &prog.Program{Name: "alias", Entry: "caller"}
	callee := &prog.Function{Name: "callee", Leaf: true}
	for i := 0; i < 63; i++ {
		callee.Code = append(callee.Code, isa.Instr{Op: isa.Nop})
	}
	callee.Code = append(callee.Code, isa.Instr{Op: isa.RetL})
	caller := &prog.Function{Name: "caller", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Call, Sym: "callee"},
		{Op: isa.Halt},
	}}
	for i := 0; i < 61; i++ {
		caller.Code = append(caller.Code, isa.Instr{Op: isa.Nop})
	}
	p.Functions = append(p.Functions, caller, callee)
	p.Data = append(p.Data, &prog.DataObject{Name: "lonely", Size: 256})

	cfg := cache.Config{Name: "L2", Size: 4096, LineSize: 32, Ways: 1}
	pl := loader.Placement{
		"caller": 0,
		"callee": 4096, // one full cache size apart → identical sets
		"lonely": 8192, // also aliases both, but interacts with neither
	}
	return p, pl, cfg
}

func TestLintL2LayoutFlagsAliasedPair(t *testing.T) {
	p, pl, cfg := aliasedProgram(t)
	diags := LintL2Layout(p, pl, cfg, L2LintOptions{})
	var warn, info int
	for _, d := range diags {
		if d.Pass != PassL2Layout {
			t.Fatalf("unexpected pass %q", d.Pass)
		}
		switch d.Sev {
		case Warning:
			warn++
			if !strings.Contains(d.Msg, "caller") || !strings.Contains(d.Msg, "callee") {
				t.Errorf("warning not about the interacting pair: %s", d)
			}
			if !strings.Contains(d.Msg, "direct-mapped") {
				t.Errorf("direct-mapped eviction note missing: %s", d)
			}
		case Info:
			info++
		}
	}
	if warn != 1 {
		t.Errorf("warnings=%d, want exactly 1 (caller/callee interact)", warn)
	}
	if info != 2 {
		t.Errorf("info=%d, want 2 (lonely vs each function)", info)
	}
}

func TestLintL2LayoutCleanWhenSeparated(t *testing.T) {
	p, pl, cfg := aliasedProgram(t)
	// Move callee and lonely into disjoint set ranges.
	pl["callee"] = 1024
	pl["lonely"] = 2048
	if diags := LintL2Layout(p, pl, cfg, L2LintOptions{}); len(diags) != 0 {
		t.Errorf("disjoint layout flagged: %v", diags)
	}
}

func TestLintL2LayoutMinSetsSuppressesTinyObjects(t *testing.T) {
	p, pl, cfg := aliasedProgram(t)
	// A 2-line object aliases 100% of its sets with nearly anything;
	// MinSets keeps it out of the report.
	p.Data = append(p.Data, &prog.DataObject{Name: "tiny", Size: 64})
	pl["tiny"] = 4096 + 8192
	for _, d := range LintL2Layout(p, pl, cfg, L2LintOptions{}) {
		if strings.Contains(d.Msg, "tiny") {
			t.Errorf("tiny object reported despite MinSets: %s", d)
		}
	}
}

func TestLintL2LayoutInvalidConfig(t *testing.T) {
	p, pl, _ := aliasedProgram(t)
	diags := LintL2Layout(p, pl, cache.Config{Name: "bad"}, L2LintOptions{})
	if len(diags) != 1 || diags[0].Sev != Error {
		t.Fatalf("invalid config diags=%v, want one error", diags)
	}
	if !strings.Contains(diags[0].Msg, "invalid cache config") {
		t.Errorf("unexpected message: %s", diags[0].Msg)
	}
}
