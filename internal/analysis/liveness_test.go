package analysis

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

func TestDeadStoreDetected(t *testing.T) {
	// l0 is written twice; the first write is never observed.
	f := prog.NewLeaf("f").
		MovI(isa.L0, 1). // dead
		MovI(isa.L0, 2).
		Mov(isa.O0, isa.L0).
		RetLeaf().
		MustBuild()
	lv := ComputeLiveness(BuildCFG(f))
	ds := lv.DeadStores()
	if len(ds) != 1 || ds[0] != 0 {
		t.Errorf("dead stores=%v, want [0]", ds)
	}
}

func TestDeadStoreAcrossBranchIsLive(t *testing.T) {
	// A value read on only one arm of a branch is still live.
	f := prog.NewLeaf("f").
		MovI(isa.L0, 7). // live: read on the else arm
		CmpI(isa.O0, 0).
		Be("use").
		MovI(isa.O0, 0).
		Ba("done").
		Label("use").
		Mov(isa.O0, isa.L0).
		Label("done").
		RetLeaf().
		MustBuild()
	lv := ComputeLiveness(BuildCFG(f))
	if ds := lv.DeadStores(); len(ds) != 0 {
		t.Errorf("dead stores=%v, want none — l0 is read on the taken arm", ds)
	}
}

func TestLoadsAreNotRemovable(t *testing.T) {
	// A load into an unread register is not a "dead store": it faults on
	// bad addresses and perturbs the caches this simulator measures.
	f := prog.NewLeaf("f").
		Ld(isa.L0, isa.O0, 0).
		RetLeaf().
		MustBuild()
	lv := ComputeLiveness(BuildCFG(f))
	if ds := lv.DeadStores(); len(ds) != 0 {
		t.Errorf("dead stores=%v; loads are impure and must not be reported", ds)
	}
}

func TestCallIsLivenessBarrier(t *testing.T) {
	// %o0 written before a call is consumed by the call (argument), so
	// the write is live even though no instruction reads it explicitly.
	f := prog.NewFunc("f", prog.MinFrame).
		Prologue().
		MovI(isa.O0, 42).
		Call("g").
		Epilogue().
		MustBuild()
	lv := ComputeLiveness(BuildCFG(f))
	if ds := lv.DeadStores(); len(ds) != 0 {
		t.Errorf("dead stores=%v; calls must act as use-all barriers", ds)
	}
}

func TestLoopCarriedLiveness(t *testing.T) {
	// The increment inside the loop body is live across the back edge.
	f := prog.NewLeaf("f").
		MovI(isa.L0, 0).
		Label("head").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 10).
		Bl("head").
		Mov(isa.O0, isa.L0).
		RetLeaf().
		MustBuild()
	lv := ComputeLiveness(BuildCFG(f))
	if ds := lv.DeadStores(); len(ds) != 0 {
		t.Errorf("dead stores=%v, want none in a loop-carried chain", ds)
	}
}
