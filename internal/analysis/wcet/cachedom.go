// Abstract cache analysis (Ferdinand-style must/may domains) for the L1
// instruction and data caches.
//
// The *must* domain proves always-hit: it maps line addresses to an
// upper bound on their LRU age, keeping only lines guaranteed resident
// in every concrete execution reaching the program point. Join is
// intersection with age maximum. The *may* domain over-approximates the
// possible cache contents and proves always-miss (report-only — the
// bound never relies on a predicted miss being cheap, since on this
// platform a miss is always the expensive outcome).
//
// Soundness gates, enforced by the caller (wcet.go):
//
//   - deterministic layout only: under DSR the line→set mapping of every
//     object changes per run, so a per-set age argument is meaningless
//     (the analyzer then falls back to distinct-line counting, which is
//     placement-independent);
//   - modulo placement + LRU replacement only: the hardware-randomised
//     caches of the A4 ablation defeat both domains by design, which is
//     exactly the paper's point about hardware vs software randomisation;
//   - the data-cache domain additionally requires a window-safe program:
//     register-window spill/fill traps issue stores and loads that the
//     access plan cannot see.
//
// Transfer functions follow the platform's policies: the DL1 is
// write-through no-allocate, so a store never installs a line, but a
// store *hit* refreshes the line's LRU age — the analysis conservatively
// ages all other same-set lines on every known store, and treats
// unknown-address accesses as ageing every tracked line by one (a single
// access perturbs at most one set by at most one step, so this is a
// superset of every concrete behaviour). Calls clear the domain: the
// callee's cache footprint is handled interprocedurally by the
// persistence analysis in cost.go, not here.
package wcet

import (
	"dsr/internal/cache"
	"dsr/internal/mem"
)

// cacheDom is the abstract-domain geometry of one cache.
type cacheDom struct {
	lineSz mem.Addr
	sets   mem.Addr
	ways   int
}

func newCacheDom(cfg cache.Config) *cacheDom {
	return &cacheDom{
		lineSz: mem.Addr(cfg.LineSize),
		sets:   mem.Addr(cfg.Sets()),
		ways:   cfg.Ways,
	}
}

// lineOf returns the line address (addr / lineSize) of a byte address.
func (c *cacheDom) lineOf(a mem.Addr) mem.Addr { return a / c.lineSz }

// setOf returns the modulo set index of a line address.
func (c *cacheDom) setOf(line mem.Addr) mem.Addr { return line % c.sets }

// mustState maps resident line address -> maximum LRU age (0 = MRU).
// Absent means "not guaranteed resident".
type mustState map[mem.Addr]int

func copyMust(s mustState) mustState {
	n := make(mustState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// mustJoin intersects a and b with age maximum (in place into a copy).
func mustJoin(a, b mustState) mustState {
	n := mustState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb > va {
				va = vb
			}
			n[k] = va
		}
	}
	return n
}

func mustEqual(a, b mustState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || vb != va {
			return false
		}
	}
	return true
}

// mustAccess applies a known-address access. install=true for reads
// (the line is resident afterwards); install=false for stores on the
// write-through no-allocate DL1, where residency is only refreshed if
// the line was already resident.
func (c *cacheDom) mustAccess(st mustState, line mem.Addr, install bool) {
	prevAge, present := st[line]
	s := c.setOf(line)
	for l, age := range st {
		if l == line || c.setOf(l) != s {
			continue
		}
		if !present || age < prevAge || !install {
			// The accessed line moves to the front; lines younger than
			// its previous age (or every same-set line, when we cannot
			// bound that age) slip one step towards eviction.
			age++
			if age >= c.ways {
				delete(st, l)
			} else {
				st[l] = age
			}
		}
	}
	if install || present {
		st[line] = 0
	}
}

// mustUnknown applies an access with statically unknown address: every
// tracked line may have aged one step.
func (c *cacheDom) mustUnknown(st mustState) {
	for l, age := range st {
		age++
		if age >= c.ways {
			delete(st, l)
		} else {
			st[l] = age
		}
	}
}

// mayState over-approximates the possible cache contents.
type mayState struct {
	lines  map[mem.Addr]bool
	allTop bool // any line may be resident
}

func newMay() *mayState { return &mayState{lines: map[mem.Addr]bool{}} }

func (m *mayState) copyMay() *mayState {
	n := &mayState{lines: make(map[mem.Addr]bool, len(m.lines)), allTop: m.allTop}
	for k := range m.lines {
		n.lines[k] = true
	}
	return n
}

// mayJoin unions b into m, reporting change.
func (m *mayState) mayJoin(b *mayState) bool {
	changed := false
	if b.allTop && !m.allTop {
		m.allTop = true
		changed = true
	}
	for k := range b.lines {
		if !m.lines[k] {
			m.lines[k] = true
			changed = true
		}
	}
	return changed
}

func (m *mayState) mayAccess(line mem.Addr, install bool) {
	if install {
		m.lines[line] = true
	}
}

func (m *mayState) mayUnknown(install bool) {
	if install {
		m.allTop = true
	}
}

// contains reports whether line may be resident.
func (m *mayState) contains(line mem.Addr) bool {
	return m.allTop || m.lines[line]
}

// accInfo is the per-instruction data-access summary handed to the
// domain by the address analysis (wcet.go).
type accInfo struct {
	load  bool // Ld/Ldub/FLd
	store bool // St/Stb/FSt
	// lineKnown marks a deterministic-layout access whose entire byte
	// range falls inside one cache line of the *data* cache.
	lineKnown bool
	line      mem.Addr
}

// accessPlan is the full memory behaviour of one function under a
// deterministic layout.
type accessPlan struct {
	// fetchLine[i] is the IL1 line of instruction i's fetch address.
	fetchLine []mem.Addr
	// data[i] summarises instruction i's data access (zero value: none).
	data []accInfo
	// call[i] marks a Call/CallR at i (clears both domains).
	call []bool
}

// classification is the outcome of the must/may fixpoint.
type classification struct {
	// fetchHit[i]: instruction i's fetch is an always-hit in the IL1.
	fetchHit []bool
	// loadHit[i]: instruction i's data load is an always-hit in the DL1.
	loadHit []bool

	AlwaysHit     int
	AlwaysMiss    int
	NotClassified int
}

// classify runs the must and may fixpoints over g for the instruction
// and data caches (independently gated by doIL1/doDL1) and re-walks the
// converged states to classify every access site.
func classify(g *cfgView, plan *accessPlan, il1, dl1 *cacheDom, doIL1, doDL1 bool) *classification {
	n := len(plan.data)
	cl := &classification{fetchHit: make([]bool, n), loadHit: make([]bool, n)}
	if !doIL1 && !doDL1 {
		for b := range g.Blocks {
			if !g.Reachable[b] {
				continue
			}
			for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
				cl.NotClassified++ // fetch
				if plan.data[i].load || plan.data[i].store {
					cl.NotClassified++
				}
			}
		}
		return cl
	}

	nb := len(g.Blocks)
	type domState struct {
		mustI, mustD mustState
		mayI, mayD   *mayState
	}
	in := make([]*domState, nb)
	seen := make([]bool, nb)
	// Entry convention: cold cache — must empty (proves nothing extra),
	// may empty (per-function always-miss classification is relative to
	// the function's own entry; documented report-only).
	in[0] = &domState{mustI: mustState{}, mustD: mustState{}, mayI: newMay(), mayD: newMay()}
	seen[0] = true

	// step applies instruction i to st.
	step := func(i int, st *domState) {
		if doIL1 {
			il1.mustAccess(st.mustI, plan.fetchLine[i], true)
			st.mayI.mayAccess(plan.fetchLine[i], true)
		}
		if doDL1 {
			d := plan.data[i]
			switch {
			case !d.load && !d.store:
			case d.lineKnown:
				dl1.mustAccess(st.mustD, d.line, d.load)
				st.mayD.mayAccess(d.line, d.load)
			default:
				dl1.mustUnknown(st.mustD)
				st.mayD.mayUnknown(d.load)
			}
		}
		if plan.call[i] {
			// The callee's accesses are invisible here; drop everything.
			st.mustI = mustState{}
			st.mustD = mustState{}
			st.mayI.allTop = true
			st.mayD.allTop = true
		}
	}

	work := []int{0}
	inWork := make([]bool, nb)
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		st := &domState{
			mustI: copyMust(in[b].mustI), mustD: copyMust(in[b].mustD),
			mayI: in[b].mayI.copyMay(), mayD: in[b].mayD.copyMay(),
		}
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			step(i, st)
		}
		for _, s := range g.Blocks[b].Succs {
			changed := false
			if !seen[s] {
				in[s] = &domState{
					mustI: copyMust(st.mustI), mustD: copyMust(st.mustD),
					mayI: st.mayI.copyMay(), mayD: st.mayD.copyMay(),
				}
				seen[s] = true
				changed = true
			} else {
				if ni := mustJoin(in[s].mustI, st.mustI); !mustEqual(ni, in[s].mustI) {
					in[s].mustI = ni
					changed = true
				}
				if nd := mustJoin(in[s].mustD, st.mustD); !mustEqual(nd, in[s].mustD) {
					in[s].mustD = nd
					changed = true
				}
				if in[s].mayI.mayJoin(st.mayI) {
					changed = true
				}
				if in[s].mayD.mayJoin(st.mayD) {
					changed = true
				}
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}

	// Classification re-walk from the converged entry states.
	for b := range g.Blocks {
		if !g.Reachable[b] || !seen[b] {
			continue
		}
		st := &domState{
			mustI: copyMust(in[b].mustI), mustD: copyMust(in[b].mustD),
			mayI: in[b].mayI.copyMay(), mayD: in[b].mayD.copyMay(),
		}
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			if doIL1 {
				switch {
				case st.mustI[plan.fetchLine[i]] < il1.ways && hasKey(st.mustI, plan.fetchLine[i]):
					cl.fetchHit[i] = true
					cl.AlwaysHit++
				case !st.mayI.contains(plan.fetchLine[i]):
					cl.AlwaysMiss++
				default:
					cl.NotClassified++
				}
			} else {
				cl.NotClassified++
			}
			d := plan.data[i]
			if d.load || d.store {
				switch {
				case !doDL1:
					cl.NotClassified++
				case d.lineKnown && hasKey(st.mustD, d.line):
					if d.load {
						cl.loadHit[i] = true
					}
					cl.AlwaysHit++
				case d.lineKnown && !st.mayD.contains(d.line):
					cl.AlwaysMiss++
				default:
					cl.NotClassified++
				}
			}
			step(i, st)
		}
	}
	return cl
}

func hasKey(s mustState, k mem.Addr) bool {
	_, ok := s[k]
	return ok
}
