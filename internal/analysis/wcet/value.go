// Symbolic register dataflow for the WCET analyzer: an abstract
// interpretation over the integer register file that tracks, for every
// program point, whether a register holds a known constant range or an
// address into a named object (global data or the current stack frame).
//
// The lattice per register is
//
//	Top (unknown)  >  Sym(obj, [lo,hi])  |  Int([lo,hi])
//
// with meet = hull on ranges of the same shape and Top otherwise. The
// analysis is deliberately cheap — constants, address arithmetic
// (add/sub/shift/mask/multiply by constants) and copies — because that
// is exactly the shape compiler-generated induction and addressing code
// takes. Everything else goes to Top, which the consumers treat as "not
// statically known" (refusing loop-bound inference or cache-footprint
// membership, never guessing).
//
// Loop induction registers are handled by two devices wired in by the
// loop analysis (loops.go):
//
//   - a *pin* replaces the transfer function of the unique increment
//     instruction of an inferred counted loop with the loop's full
//     iteration range, so the fixpoint converges in one pass instead of
//     widening to Top; and
//   - a back-edge *refinement* intersects the induction register with
//     the branch's continue-condition on the back edge, so the header
//     state excludes the exit value (the classic one-past-the-end
//     overshoot that would otherwise push address ranges out of their
//     object).
//
// Termination without pins is guaranteed by widening: a register whose
// incoming range grows more than growLimit times at the same block is
// forced to Top.
package wcet

import (
	"dsr/internal/isa"
	"dsr/internal/prog"
)

type valKind uint8

const (
	vUnknown valKind = iota // Top
	vInt                    // integer in [lo, hi]
	vSym                    // address of sym + offset in [lo, hi]
)

// value is one abstract register value.
type value struct {
	kind   valKind
	sym    string
	lo, hi int64
}

// rangeCap bounds the magnitude of tracked ranges; anything wilder is
// Top (it could not index a real object anyway).
const rangeCap = int64(1) << 45

func top() value           { return value{} }
func vConst(c int64) value { return value{kind: vInt, lo: c, hi: c} }
func vRange(lo, hi int64) value {
	if lo > hi || lo < -rangeCap || hi > rangeCap {
		return top()
	}
	return value{kind: vInt, lo: lo, hi: hi}
}
func vSymOff(sym string, lo, hi int64) value {
	if lo > hi || lo < -rangeCap || hi > rangeCap {
		return top()
	}
	return value{kind: vSym, sym: sym, lo: lo, hi: hi}
}

func (v value) isConst() bool   { return v.kind == vInt && v.lo == v.hi }
func (v value) constVal() int64 { return v.lo }

// meet is the lattice meet (hull of same-shaped values, Top otherwise).
func meet(a, b value) value {
	if a.kind == vUnknown || b.kind == vUnknown || a.kind != b.kind {
		return top()
	}
	if a.kind == vSym && a.sym != b.sym {
		return top()
	}
	lo, hi := a.lo, a.hi
	if b.lo < lo {
		lo = b.lo
	}
	if b.hi > hi {
		hi = b.hi
	}
	if a.kind == vSym {
		return vSymOff(a.sym, lo, hi)
	}
	return vRange(lo, hi)
}

// grows reports whether nv strictly widens ov (used for widening).
func grows(ov, nv value) bool {
	if ov.kind != nv.kind || ov.kind == vUnknown {
		return false
	}
	return nv.lo < ov.lo || nv.hi > ov.hi
}

func vAdd(a, b value) value {
	switch {
	case a.kind == vInt && b.kind == vInt:
		return vRange(a.lo+b.lo, a.hi+b.hi)
	case a.kind == vSym && b.kind == vInt:
		return vSymOff(a.sym, a.lo+b.lo, a.hi+b.hi)
	case a.kind == vInt && b.kind == vSym:
		return vSymOff(b.sym, b.lo+a.lo, b.hi+a.hi)
	}
	return top()
}

func vSub(a, b value) value {
	switch {
	case a.kind == vInt && b.kind == vInt:
		return vRange(a.lo-b.hi, a.hi-b.lo)
	case a.kind == vSym && b.kind == vInt:
		return vSymOff(a.sym, a.lo-b.hi, a.hi-b.lo)
	case a.kind == vSym && b.kind == vSym && a.sym == b.sym:
		return vRange(a.lo-b.hi, a.hi-b.lo)
	}
	return top()
}

func vMul(a, b value) value {
	if a.kind != vInt || b.kind != vInt {
		return top()
	}
	p := [4]int64{a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return vRange(lo, hi)
}

func vSll(a, b value) value {
	if a.kind != vInt || !b.isConst() || b.lo < 0 || b.lo > 31 {
		return top()
	}
	return vRange(a.lo<<uint(b.lo), a.hi<<uint(b.lo))
}

func vSrl(a, b value) value {
	// Sound only for non-negative ranges, where the logical and
	// arithmetic shifts agree and the shift is monotonic.
	if a.kind != vInt || a.lo < 0 || !b.isConst() || b.lo < 0 || b.lo > 31 {
		return top()
	}
	return vRange(a.lo>>uint(b.lo), a.hi>>uint(b.lo))
}

func vAnd(a, b value) value {
	if a.isConst() && b.isConst() {
		return vConst(a.lo & b.lo)
	}
	// x & mask lies in [0, mask] for a non-negative constant mask,
	// whatever x is — the idiom behind power-of-two ring indexing.
	if b.isConst() && b.lo >= 0 {
		return vRange(0, b.lo)
	}
	if a.isConst() && a.lo >= 0 {
		return vRange(0, a.lo)
	}
	return top()
}

// regState is the abstract register file. %g0 reads as constant zero.
type regState [isa.NumRegs]value

func (s *regState) get(r isa.Reg) value {
	if r == isa.G0 {
		return vConst(0)
	}
	return s[r]
}

func (s *regState) set(r isa.Reg, v value) {
	if r != isa.G0 {
		s[r] = v
	}
}

func (s *regState) clobberAll() {
	for i := range s {
		s[i] = top()
	}
}

// stackSym names the pseudo-object standing for fn's stack frame: the
// region [new %sp, new %sp + FrameSize) established by the prologue.
// Its base is 8-byte aligned in every mode (deterministic frames are
// double-word aligned; the DSR offsets are drawn 8-aligned), which is
// what the relative cache-footprint accounting relies on.
func stackSym(fn string) string { return "\x00stack:" + fn }

// callClobber describes how a call site disturbs the register file,
// precomputed per callee by the analyzer.
type callClobber struct {
	// regs lists the integer registers whose caller values die across
	// the call.
	regs []isa.Reg
	// all forces a full clobber (unresolved callees).
	all bool
}

// edgeKey identifies a CFG edge for back-edge refinements.
type edgeKey struct{ from, to int }

// dataflow runs the symbolic analysis over one function.
type dataflow struct {
	fn *prog.Function
	g  *cfgView
	in []regState // converged block entry states
	// pins overrides the destination value of the instruction at the
	// given index (inferred loop increments).
	pins map[int]value
	// refine transforms the state propagated along a specific edge
	// (back-edge continue-condition intersection).
	refine map[edgeKey]func(*regState)
	// clobbers maps call-instruction index to its clobber effect.
	clobbers map[int]callClobber
	// prologue is the index of the first Save/SaveX, which establishes
	// the frame (only it binds %sp to the stack pseudo-object).
	prologue int
}

// growLimit is the number of times a register's incoming range may
// widen at one block before it is forced to Top.
const growLimit = 3

func newDataflow(fn *prog.Function, g *cfgView) *dataflow {
	d := &dataflow{
		fn: fn, g: g,
		pins:     map[int]value{},
		refine:   map[edgeKey]func(*regState){},
		clobbers: map[int]callClobber{},
		prologue: -1,
	}
	for i := range fn.Code {
		if op := fn.Code[i].Op; op == isa.Save || op == isa.SaveX {
			d.prologue = i
			break
		}
	}
	return d
}

func (d *dataflow) src2(in *isa.Instr, st *regState) value {
	if in.UseImm {
		return vConst(int64(in.Imm))
	}
	return st.get(in.Rs2)
}

// step applies one instruction's transfer function to st.
func (d *dataflow) step(i int, st *regState) {
	in := &d.fn.Code[i]
	defer func() {
		if pv, ok := d.pins[i]; ok {
			// Pinned destination: the loop analysis proved this range.
			st.set(in.Rd, pv)
		}
	}()
	switch in.Op {
	case isa.Add:
		st.set(in.Rd, vAdd(st.get(in.Rs1), d.src2(in, st)))
	case isa.Sub:
		st.set(in.Rd, vSub(st.get(in.Rs1), d.src2(in, st)))
	case isa.Mul:
		st.set(in.Rd, vMul(st.get(in.Rs1), d.src2(in, st)))
	case isa.Sll:
		st.set(in.Rd, vSll(st.get(in.Rs1), d.src2(in, st)))
	case isa.Srl:
		st.set(in.Rd, vSrl(st.get(in.Rs1), d.src2(in, st)))
	case isa.And:
		st.set(in.Rd, vAnd(st.get(in.Rs1), d.src2(in, st)))
	case isa.Or, isa.Xor, isa.Sra, isa.Div:
		a, b := st.get(in.Rs1), d.src2(in, st)
		if a.isConst() && b.isConst() {
			switch in.Op {
			case isa.Or:
				st.set(in.Rd, vConst(a.lo|b.lo))
			case isa.Xor:
				st.set(in.Rd, vConst(a.lo^b.lo))
			default:
				st.set(in.Rd, top())
			}
		} else {
			st.set(in.Rd, top())
		}
	case isa.Set:
		if in.Sym != "" {
			st.set(in.Rd, vSymOff(in.Sym, 0, 0))
		} else {
			st.set(in.Rd, vConst(int64(in.Imm)))
		}
	case isa.Mov:
		st.set(in.Rd, d.src2(in, st))
	case isa.Ld, isa.Ldub:
		st.set(in.Rd, top())
	case isa.Call, isa.CallR:
		cb := d.clobbers[i]
		if cb.all {
			st.clobberAll()
			return
		}
		for _, r := range cb.regs {
			st.set(r, top())
		}
		st.set(isa.O7, top())
	case isa.Save, isa.SaveX:
		st.clobberAll()
		if i == d.prologue {
			st.set(isa.SP, vSymOff(stackSym(d.fn.Name), 0, 0))
		}
	case isa.Restore, isa.Ret, isa.RetL:
		st.clobberAll()
	default:
		// Cmp, branches, stores, FP ops, Nop, Halt, IPoint: no integer
		// register writes.
	}
}

// run iterates to a fixpoint with per-(block,register) widening.
func (d *dataflow) run() {
	n := len(d.g.Blocks)
	d.in = make([]regState, n)
	seen := make([]bool, n)
	growCnt := make([][isa.NumRegs]uint8, n)

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	seen[0] = true // entry state: all Top

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		st := d.in[b]
		for i := d.g.Blocks[b].Start; i < d.g.Blocks[b].End; i++ {
			d.step(i, &st)
		}
		for _, s := range d.g.Blocks[b].Succs {
			out := st
			if f, ok := d.refine[edgeKey{b, s}]; ok {
				f(&out)
			}
			changed := false
			if !seen[s] {
				d.in[s] = out
				seen[s] = true
				changed = true
			} else {
				for r := 0; r < int(isa.NumRegs); r++ {
					nv := meet(d.in[s][r], out[r])
					if nv == d.in[s][r] {
						continue
					}
					if grows(d.in[s][r], nv) {
						growCnt[s][r]++
						if growCnt[s][r] > growLimit {
							nv = top()
						}
					}
					if nv != d.in[s][r] {
						d.in[s][r] = nv
						changed = true
					}
				}
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
}

// replay walks every reachable block from its converged entry state,
// invoking visit with the state *before* each instruction.
func (d *dataflow) replay(visit func(i int, st *regState)) {
	for b := range d.g.Blocks {
		if !d.g.Reachable[b] {
			continue
		}
		st := d.in[b]
		for i := d.g.Blocks[b].Start; i < d.g.Blocks[b].End; i++ {
			visit(i, &st)
			d.step(i, &st)
		}
	}
}
