// Package wcet is a sound static worst-case execution time analyzer for
// the simulator's programs, closing the loop the paper leaves open: the
// MBPTA/pWCET machinery (internal/mbpta) estimates probabilistic bounds
// from randomised *measurements*, while this package derives a hard
// upper bound from the program text and the platform configuration
// alone, against which every simulated run can be cross-checked
// (simulated cycles ≤ static bound, enforced in tests and CI).
//
// The pipeline:
//
//  1. loop bounds — counted-loop inference over the CFG/dominator
//     machinery, falling back to `dsr:loop-bound N` annotations, with a
//     hard diagnostic when a loop has neither (loops.go);
//  2. symbolic register dataflow for addresses and induction ranges
//     (value.go);
//  3. Ferdinand-style must/may abstract cache analysis for the L1s
//     under a deterministic layout, classifying always-hit /
//     always-miss / not-classified (internal/analysis/cachedom, the
//     domain shared with the leakage analyzer), plus a loop
//     persistence analysis that works in both deterministic and
//     DSR-randomised modes (cost.go);
//  4. an IPET-style bound: collapse loop nests by their bounds, longest
//     path over the acyclic condensation, instructions costed from the
//     timing table shared with the simulator, memory stalls from the
//     platform's cache/TLB/bus/DRAM configuration (cost.go);
//  5. interprocedural composition over the call graph,
//     context-insensitive, recursion rejected with a diagnostic.
//
// Analysis modes mirror the paper's build variants: ModeDet analyses
// the unmodified deterministically-laid-out program; ModeDSREager and
// ModeDSRLazy analyse the DSR-transformed program over *all feasible
// randomised placements*, which forfeits the exact-address cache
// domains (the paper's observation that static analysis of randomised
// software degrades) but keeps placement-independent bounds sound.
//
// Analyze never panics on malformed input: every failure mode —
// unbounded loop, recursion, unresolved indirect call, irreducible
// control flow — is an Error diagnostic with Bounded=false.
package wcet

import (
	"encoding/json"
	"fmt"

	"dsr/internal/analysis"
	"dsr/internal/analysis/cachedom"
	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/timing"
)

// Mode selects the layout model the bound must cover.
type Mode int

const (
	// ModeDet analyses a deterministic sequential layout (the paper's
	// COTS baseline): exact addresses, full must/may cache analysis.
	ModeDet Mode = iota
	// ModeDSREager analyses a DSR-transformed program under eager
	// relocation: every function and data object may land anywhere
	// (8-byte aligned), so the bound joins over all feasible placements.
	ModeDSREager
	// ModeDSRLazy is ModeDSREager plus lazy relocation: objects may move
	// *during* the run, which additionally forfeits loop persistence;
	// Config.RelocBound charges the relocation machinery itself.
	ModeDSRLazy
)

func (m Mode) String() string {
	switch m {
	case ModeDet:
		return "det"
	case ModeDSREager:
		return "dsr-eager"
	case ModeDSRLazy:
		return "dsr-lazy"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterises the analysis.
type Config struct {
	// Platform supplies cache/TLB/bus/DRAM geometry and latencies.
	// Nil selects platform.ProximaLEON3().
	Platform *platform.Config
	// Timing overrides the per-instruction timing table; nil uses the
	// platform CPU's embedded table (the one the simulator charges).
	Timing *timing.Model
	// Mode selects the layout model (see Mode).
	Mode Mode
	// Layout is the deterministic layout analysed in ModeDet; the zero
	// value selects loader.DefaultSequentialConfig().
	Layout loader.SequentialConfig
	// Resolve attributes indirect calls (analysis.ResolveDispatch for
	// DSR-transformed programs). Nil leaves CallR unresolved → Error.
	Resolve analysis.CallResolver
	// Lines maps (function, instruction) to source lines for
	// diagnostics and the loop report (asm.SourceInfo). May be nil.
	Lines analysis.LineResolver
	// StackOffsetBound is the inclusive upper bound on the per-frame
	// random stack offset (DSR modes); forwarded to the stack analysis.
	StackOffsetBound int
	// BusContention is an optional worst-case per-bus-transaction
	// interference delay (bus.Contention.MaxDelay under worst-case
	// contention mode).
	BusContention mem.Cycles
	// RelocBound is the caller-supplied bound on the lazy-relocation
	// machinery, charged once per function in ModeDSRLazy.
	RelocBound mem.Cycles
}

// LoopBound is one resolved loop bound in the report.
type LoopBound struct {
	Fn     string `json:"fn"`
	Head   int    `json:"head"` // instruction index of the loop header
	Line   int    `json:"line,omitempty"`
	Bound  int    `json:"bound"`
	Source string `json:"source"` // "inferred" | "annotated"
	Depth  int    `json:"depth"`
}

// Report is the analysis result.
type Report struct {
	Program string `json:"program"`
	Entry   string `json:"entry"`
	Mode    string `json:"mode"`

	// Bounded is true iff the analysis produced a finite sound bound.
	Bounded bool `json:"bounded"`
	// BoundCycles is the WCET bound in cycles (valid when Bounded).
	BoundCycles mem.Cycles `json:"bound_cycles"`
	// Saturated marks a bound that hit the arithmetic ceiling — still
	// sound as stated, but useless; treat as a diagnostic.
	Saturated bool `json:"saturated,omitempty"`

	// WindowSafe: the stack analysis proved no register-window
	// spill/fill traps can occur.
	WindowSafe bool `json:"window_safe"`
	// ITLBPages/DTLBPages are the page working-set bounds; TLBCycles is
	// the one-time walk charge included in the bound when the working
	// set fits the TLB.
	ITLBPages int        `json:"itlb_pages"`
	DTLBPages int        `json:"dtlb_pages"`
	TLBCycles mem.Cycles `json:"tlb_cycles"`

	// Cache classification tallies (deterministic mode; DSR modes
	// classify nothing).
	AlwaysHit     int `json:"always_hit"`
	AlwaysMiss    int `json:"always_miss"`
	NotClassified int `json:"not_classified"`

	// Loops lists every natural loop with its resolved bound.
	Loops []LoopBound `json:"loops"`
	// FuncCycles bounds one standalone execution of each function.
	FuncCycles map[string]mem.Cycles `json:"func_cycles,omitempty"`

	Diags []analysis.Diagnostic `json:"diags,omitempty"`
}

// JSON renders the report as indented JSON (the `dsrwcet -json` and
// `dsrlint -json` wcet section; field names are a stable contract).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// HasErrors reports whether any Error-severity diagnostic was emitted.
func (r *Report) HasErrors() bool {
	for i := range r.Diags {
		if r.Diags[i].Sev == analysis.Error {
			return true
		}
	}
	return false
}

// dataAcc is one instruction's data access in object coordinates.
type dataAcc struct {
	valid  bool   // address statically known
	sym    string // object name; "" = absolute; "\x00stack:f" = f's frame
	lo, hi int64  // access start offset range
	size   int    // bytes
	load   bool
	store  bool
}

// fnInfo bundles all per-function analysis artifacts.
type fnInfo struct {
	fn     *prog.Function
	g      *cfgView
	nest   *loopNest
	df     *dataflow
	acc    []dataAcc
	plan   *cachedom.AccessPlan
	cls    *cachedom.Classification
	callee []string // resolved callee name per instruction ("" = none)
	base   mem.Addr // deterministic code base (0 in DSR modes)
}

// analyzer is the in-flight analysis state.
type analyzer struct {
	p   *prog.Program
	cfg *Config
	pf  *platform.Config
	tm  timing.Model
	lat latModel

	mode       Mode
	layout     loader.Placement // nil in DSR modes
	il1, dl1   *cachedom.Dom
	useMustI   bool
	useMustD   bool
	hotIOK     bool
	hotDOK     bool
	windowSafe bool

	fns    map[string]*fnInfo
	reach  map[string]bool // functions reachable from the entry
	memo   map[costKey]costRes
	fit    map[fitKey]fitRes
	onPath map[string]bool
	rep    *Report
}

// computeReach marks every function reachable from the entry through
// resolved call edges. Unreachable functions are pruned from the
// analysis: their loops need no bounds, they are not classified and not
// costed — dead code must not be able to veto a live program's bound.
func (a *analyzer) computeReach() {
	a.reach = map[string]bool{}
	var walk func(name string)
	walk = func(name string) {
		if a.reach[name] {
			return
		}
		fi, ok := a.fns[name]
		if !ok {
			return
		}
		a.reach[name] = true
		for _, c := range fi.callee {
			if c != "" {
				walk(c)
			}
		}
	}
	walk(a.p.Entry)
	for _, f := range a.p.Functions {
		if !a.reach[f.Name] {
			a.diag(analysis.Info, f.Name, 0,
				"function %q is unreachable from entry %q: pruned from the WCET analysis", f.Name, a.p.Entry)
		}
	}
}

func (a *analyzer) det() bool { return a.mode == ModeDet }

// diag appends a diagnostic, resolving a source line when possible.
func (a *analyzer) diag(sev analysis.Severity, fn string, idx int, format string, args ...interface{}) {
	d := analysis.Diagnostic{
		Pass: "wcet", Sev: sev, Fn: fn, Index: idx,
		Msg: fmt.Sprintf(format, args...),
	}
	if a.cfg.Lines != nil {
		if ln, ok := a.cfg.Lines(fn, idx); ok {
			d.Line = ln
		}
	}
	a.rep.Diags = append(a.rep.Diags, d)
}

// Analyze computes a static WCET bound for p under cfg. It never
// panics: analysis failures are Error diagnostics with Bounded=false.
func Analyze(p *prog.Program, cfg Config) *Report {
	a, sb, ok := prepare(p, cfg)
	rep := a.rep
	if !ok {
		return rep
	}

	// TLB page budgets, then the latency model.
	itlbEach, dtlbEach := a.tlbBudget(sb)
	a.lat = deriveLat(a.pf, a.tm, cfg.BusContention, itlbEach, dtlbEach)
	if !itlbEach {
		rep.TLBCycles += a.satMul(rep.ITLBPages, a.lat.walkI)
	}
	if !dtlbEach {
		rep.TLBCycles += a.satMul(rep.DTLBPages, a.lat.walkD)
	}

	// The bound.
	cyc, ok := a.costFn(p.Entry, false, false)
	if !ok {
		return rep
	}
	bound := a.satAdd(cyc, rep.TLBCycles)
	if a.mode == ModeDSRLazy && cfg.RelocBound > 0 {
		bound = a.satAdd(bound, a.satMul(len(p.Functions), cfg.RelocBound))
	}
	rep.BoundCycles = bound
	rep.Bounded = !rep.HasErrors()

	for _, f := range p.Functions {
		if !a.reach[f.Name] {
			continue
		}
		if c, ok := a.costFn(f.Name, false, false); ok {
			rep.FuncCycles[f.Name] = c
		}
	}
	return rep
}

// prepare runs the analysis front end shared by Analyze and BuildModel:
// validation, stack analysis, layout, domain gates, per-function CFGs
// and dataflow, reachability, loop bounds, access plans and must/may
// classification. ok=false means a hard failure already recorded in
// a.rep.Diags.
func prepare(p *prog.Program, cfg Config) (a *analyzer, sb *analysis.StackBound, ok bool) {
	rep := &Report{Program: p.Name, Entry: p.Entry, Mode: cfg.Mode.String(), FuncCycles: map[string]mem.Cycles{}}
	pf := cfg.Platform
	if pf == nil {
		def := platform.ProximaLEON3()
		pf = &def
	}
	tm := pf.CPU.Model
	if cfg.Timing != nil {
		tm = *cfg.Timing
	}
	a = &analyzer{
		p: p, cfg: &cfg, pf: pf, tm: tm, mode: cfg.Mode,
		il1: cachedom.New(pf.IL1), dl1: cachedom.New(pf.DL1),
		fns:  map[string]*fnInfo{},
		memo: map[costKey]costRes{}, fit: map[fitKey]fitRes{},
		onPath: map[string]bool{},
		rep:    rep,
	}

	if err := p.Validate(); err != nil {
		a.diag(analysis.Error, "", 0, "program does not validate: %v", err)
		return a, nil, false
	}

	// Stack analysis: recursion detection and window-trap bound.
	var err error
	sb, err = analysis.AnalyzeStack(p, analysis.StackOptions{
		NumWindows:       pf.CPU.NumWindows,
		StackOffsetBound: cfg.StackOffsetBound,
		Resolve:          cfg.Resolve,
	})
	if err != nil {
		a.diag(analysis.Error, "", 0, "stack analysis failed: %v", err)
		return a, nil, false
	}
	a.windowSafe = sb.WindowSpillBound == 0
	rep.WindowSafe = a.windowSafe
	if !a.windowSafe {
		a.diag(analysis.Warning, "", 0,
			"program is not window-safe (up to %d spill(s)): every save/restore is charged a full trap", sb.WindowSpillBound)
	}

	// Deterministic layout (ModeDet only).
	if a.det() {
		seq := cfg.Layout
		if seq == (loader.SequentialConfig{}) {
			seq = loader.DefaultSequentialConfig()
		}
		lay, err := loader.LayoutSequential(p, seq)
		if err != nil {
			a.diag(analysis.Error, "", 0, "layout failed: %v", err)
			return a, nil, false
		}
		a.layout = lay.Placement
	}

	// Domain gates.
	modLRU := func(c cache.Config) bool {
		return c.Placement == cache.PlacementModulo && c.Replacement == cache.ReplacementLRU
	}
	a.useMustI = a.det() && modLRU(pf.IL1)
	a.useMustD = a.det() && modLRU(pf.DL1) && a.windowSafe
	a.hotIOK = a.mode != ModeDSRLazy && modLRU(pf.IL1)
	a.hotDOK = a.mode != ModeDSRLazy && modLRU(pf.DL1) && a.windowSafe
	if a.det() && (!modLRU(pf.IL1) || !modLRU(pf.DL1)) {
		a.diag(analysis.Warning, "", 0,
			"cache is not modulo-placed LRU: must/may analysis and persistence disabled (every access charged as a miss)")
	}

	// Per-function artifacts.
	if !a.buildFns() {
		return a, sb, false
	}
	a.computeReach()

	// Loop bounds (reachable functions only: dead code needs none).
	allBounded := true
	for _, f := range p.Functions {
		if !a.reach[f.Name] {
			continue
		}
		fi := a.fns[f.Name]
		ok := fi.df.resolveBounds(fi.g, fi.nest, func(sev analysis.Severity, idx int, format string, args ...interface{}) {
			a.diag(sev, f.Name, idx, format, args...)
		})
		if !ok {
			allBounded = false
		}
		// Phase 2: precise induction ranges for the address analysis.
		fi.df.run()
		a.buildAccesses(fi)
	}
	for _, f := range p.Functions {
		if !a.reach[f.Name] {
			continue
		}
		fi := a.fns[f.Name]
		for _, l := range fi.nest.loops {
			lb := LoopBound{Fn: f.Name, Head: fi.g.Blocks[l.header].Start, Bound: l.bound, Source: l.source, Depth: l.depth}
			if cfg.Lines != nil {
				if ln, ok := cfg.Lines(f.Name, lb.Head); ok {
					lb.Line = ln
				}
			}
			rep.Loops = append(rep.Loops, lb)
		}
	}
	if !allBounded {
		return a, sb, false
	}

	// Must/may classification.
	for _, f := range p.Functions {
		if !a.reach[f.Name] {
			continue
		}
		fi := a.fns[f.Name]
		fi.cls = cachedom.Classify(fi.g, fi.plan, a.il1, a.dl1, a.useMustI, a.useMustD)
		rep.AlwaysHit += fi.cls.AlwaysHit
		rep.AlwaysMiss += fi.cls.AlwaysMiss
		rep.NotClassified += fi.cls.NotClassified
	}
	return a, sb, true
}

// buildFns constructs CFGs, loop nests, call clobbers and phase-1
// dataflow for every function.
func (a *analyzer) buildFns() bool {
	// Global facts for the clobber model: the registers each leaf
	// writes, and whether any function writes %sp/%fp as an ordinary
	// destination (if none does, a caller's %sp survives calls — the
	// callee sees it as %fp and window rotation restores the rest).
	leafWrites := map[string][]isa.Reg{}
	spWritten := false
	for _, f := range a.p.Functions {
		var writes []isa.Reg
		seen := map[isa.Reg]bool{}
		for i := range f.Code {
			in := &f.Code[i]
			for r := isa.G0; r < isa.NumRegs; r++ {
				if writesIntReg(in, r) {
					if r == isa.SP || r == isa.FP {
						spWritten = true
					}
					if f.Leaf && !seen[r] {
						seen[r] = true
						writes = append(writes, r)
					}
				}
			}
		}
		if f.Leaf {
			leafWrites[f.Name] = writes
		}
	}
	// A non-leaf callee gets a fresh window: the caller keeps its
	// locals and ins; its globals and outs (the callee's ins) may die.
	nonLeafClobber := []isa.Reg{
		isa.G1, isa.G2, isa.G3, isa.G4, isa.G5, isa.G6, isa.G7,
		isa.O0, isa.O1, isa.O2, isa.O3, isa.O4, isa.O5, isa.O7,
	}
	if spWritten {
		nonLeafClobber = append(nonLeafClobber, isa.SP)
	}

	for _, f := range a.p.Functions {
		g := analysis.BuildCFG(f)
		fi := &fnInfo{
			fn: f, g: g, nest: buildLoopNest(g),
			callee: make([]string, len(f.Code)),
		}
		if a.det() {
			fi.base = a.layout[f.Name]
		}
		fi.df = newDataflow(f, g)
		for i := range f.Code {
			var callee string
			switch f.Code[i].Op {
			case isa.Call:
				callee = f.Code[i].Sym
			case isa.CallR:
				if a.cfg.Resolve != nil {
					if c, ok := a.cfg.Resolve(f, i); ok {
						callee = c
					}
				}
				if callee == "" {
					fi.df.clobbers[i] = callClobber{all: true}
					continue
				}
			default:
				continue
			}
			fi.callee[i] = callee
			target := a.p.Function(callee)
			switch {
			case target == nil:
				fi.df.clobbers[i] = callClobber{all: true}
			case target.Leaf:
				fi.df.clobbers[i] = callClobber{regs: leafWrites[callee]}
			default:
				fi.df.clobbers[i] = callClobber{regs: nonLeafClobber}
			}
		}
		fi.df.run() // phase 1: feeds loop-bound inference
		a.fns[f.Name] = fi
	}
	return true
}

// buildAccesses derives the per-instruction data-access summaries and
// the deterministic-mode access plan from the converged phase-2 states.
func (a *analyzer) buildAccesses(fi *fnInfo) {
	n := len(fi.fn.Code)
	fi.acc = make([]dataAcc, n)
	fi.plan = &cachedom.AccessPlan{
		FetchLine: make([]mem.Addr, n),
		Data:      make([]cachedom.AccessInfo, n),
		Call:      make([]bool, n),
	}
	for i := range fi.fn.Code {
		op := fi.fn.Code[i].Op
		if a.det() {
			fi.plan.FetchLine[i] = a.il1.LineOf(fi.base + mem.Addr(i)*isa.InstrBytes)
		}
		if op == isa.Call || op == isa.CallR {
			fi.plan.Call[i] = true
		}
	}
	fi.df.replay(func(i int, st *regState) {
		in := &fi.fn.Code[i]
		var acc dataAcc
		switch in.Op {
		case isa.Ld, isa.FLd:
			acc.load, acc.size = true, mem.WordSize
		case isa.Ldub:
			acc.load, acc.size = true, 1
		case isa.St, isa.FSt:
			acc.store, acc.size = true, mem.WordSize
		case isa.Stb:
			acc.store, acc.size = true, 1
		default:
			return
		}
		base := st.get(in.Rs1)
		switch base.kind {
		case vSym:
			acc.valid = true
			acc.sym = base.sym
			acc.lo, acc.hi = base.lo+int64(in.Imm), base.hi+int64(in.Imm)
		case vInt:
			acc.valid = true
			acc.lo, acc.hi = base.lo+int64(in.Imm), base.hi+int64(in.Imm)
		}
		fi.acc[i] = acc

		// Deterministic plan entry for the must/may domains: only
		// single-line concrete addresses are "known".
		if a.det() && acc.valid {
			var lo, hi mem.Addr
			resolved := false
			switch {
			case acc.sym == "":
				if acc.lo >= 0 {
					lo, hi = mem.Addr(acc.lo), mem.Addr(acc.hi+int64(acc.size)-1)
					resolved = true
				}
			default:
				if b, ok := a.layout[acc.sym]; ok && acc.lo >= 0 {
					lo, hi = b+mem.Addr(acc.lo), b+mem.Addr(acc.hi)+mem.Addr(acc.size)-1
					resolved = true
				}
			}
			if resolved && a.dl1.LineOf(lo) == a.dl1.LineOf(hi) {
				fi.plan.Data[i] = cachedom.AccessInfo{Load: acc.load, Store: acc.store, LineKnown: true, Line: a.dl1.LineOf(lo)}
				return
			}
		}
		fi.plan.Data[i] = cachedom.AccessInfo{Load: acc.load, Store: acc.store}
	})
}

// tlbBudget bounds the page working sets. When a working set fits its
// fully-associative LRU TLB (whose insertion prefers invalid entries,
// so no page is ever evicted below capacity), each page walks at most
// once and the walks are charged once, up front; otherwise every access
// is charged a full walk and a Warning is emitted.
func (a *analyzer) tlbBudget(sb *analysis.StackBound) (itlbEach, dtlbEach bool) {
	pg := int64(mem.PageSize)
	pages := func(size int64) int { return int((size-1)/pg) + 2 } // unknown base: +1 slack

	var iPages, dPages int
	if a.det() {
		// Code and data are contiguous spans with known bases.
		var cLo, cHi, dLo, dHi mem.Addr
		first := true
		for _, f := range a.p.Functions {
			b := a.layout[f.Name]
			e := b + f.SizeBytes()
			if first || b < cLo {
				cLo = b
			}
			if first || e > cHi {
				cHi = e
			}
			first = false
		}
		iPages = int(cHi/mem.Addr(pg)-cLo/mem.Addr(pg)) + 1
		first = true
		for _, d := range a.p.Data {
			b := a.layout[d.Name]
			e := b + d.Size
			if first || b < dLo {
				dLo = b
			}
			if first || e > dHi {
				dHi = e
			}
			first = false
		}
		if !first {
			dPages = int(dHi/mem.Addr(pg)-dLo/mem.Addr(pg)) + 1
		}
	} else {
		for _, f := range a.p.Functions {
			iPages += pages(int64(f.SizeBytes()))
		}
		for _, d := range a.p.Data {
			dPages += pages(int64(d.Size))
		}
	}
	// The stack span below StackTop is concrete in every mode.
	stackBytes := int64(sb.MaxStackBytes)
	if stackBytes > 0 {
		dPages += int(stackBytes/pg) + 1
	}
	a.rep.ITLBPages, a.rep.DTLBPages = iPages, dPages

	// An unknown-address data access could touch a fresh page each
	// time; the budget argument then fails. Only reachable code counts
	// (pruned functions never execute and carry no access summaries).
	unknownAcc := false
	for _, fi := range a.fns {
		if !a.reach[fi.fn.Name] {
			continue
		}
		for b := range fi.g.Blocks {
			if !fi.g.Reachable[b] {
				continue
			}
			blk := fi.g.Blocks[b]
			for i := blk.Start; i < blk.End; i++ {
				acc := fi.acc[i]
				if (acc.load || acc.store) && !acc.valid {
					unknownAcc = true
				}
			}
		}
	}

	if iPages > a.pf.ITLB.Entries {
		itlbEach = true
		a.diag(analysis.Warning, "", 0,
			"code spans %d pages > %d ITLB entries: charging a page walk per fetch", iPages, a.pf.ITLB.Entries)
	}
	if dPages > a.pf.DTLB.Entries || unknownAcc {
		dtlbEach = true
		why := fmt.Sprintf("data+stack span %d pages > %d DTLB entries", dPages, a.pf.DTLB.Entries)
		if unknownAcc {
			why = "a data access has no statically known address"
		}
		a.diag(analysis.Warning, "", 0, "%s: charging a page walk per data access", why)
	}
	return itlbEach, dtlbEach
}
