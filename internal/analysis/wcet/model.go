// Exported front-end model: everything the analyzer derives about a
// program before costing — CFGs, loop bounds, access plans, must/may
// classification, call edges, reachability and the deterministic
// layout — packaged for sibling analyzers. The leakage analyzer
// (internal/analysis/leak) consumes this instead of re-implementing the
// pipeline, which keeps its counting bounds wired to exactly the
// artifacts the WCET bound is computed from.
package wcet

import (
	"fmt"

	"dsr/internal/analysis"
	"dsr/internal/analysis/cachedom"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// StackSymPrefix marks the pseudo-symbol DataAccess.Sym uses for an
// access into a function's stack frame: StackSymPrefix + function name.
const StackSymPrefix = "\x00stack:"

// DataAccess is one instruction's data access in object coordinates
// (the exported view of the address analysis).
type DataAccess struct {
	Valid  bool   // address statically known
	Sym    string // object name; "" = absolute; StackSymPrefix+f = f's frame
	Lo, Hi int64  // access start offset range
	Size   int    // bytes
	Load   bool
	Store  bool
}

// LoopRegion is one natural loop with its resolved bound.
type LoopRegion struct {
	Header int          // header block ID
	Blocks map[int]bool // block IDs in the loop (header included)
	Parent int          // innermost enclosing loop index, -1 for top level
	Depth  int          // 1 = outermost
	Bound  int          // max iterations per entry; 0 = unresolved
}

// FuncModel bundles the front end's per-function artifacts.
type FuncModel struct {
	Fn        *prog.Function
	G         *analysis.CFG
	Loops     []LoopRegion
	Innermost []int // innermost loop index per block, -1 for none
	Plan      *cachedom.AccessPlan
	Class     *cachedom.Classification
	Callee    []string // resolved callee name per instruction ("" = none)
	Base      mem.Addr // deterministic code base (0 in DSR modes)
	Acc       []DataAccess
}

// Model is the analyzer front end's view of a program under one mode.
type Model struct {
	Prog     *prog.Program
	Mode     Mode
	Platform *platform.Config
	IL1, DL1 *cachedom.Dom

	// Layout is the deterministic placement (nil in DSR modes).
	Layout loader.Placement
	// Funcs maps function name to its artifacts; Reach marks functions
	// reachable from the entry.
	Funcs map[string]*FuncModel
	Reach map[string]bool

	// WindowSafe: no register-window spill/fill traps can occur.
	// UseMustI/UseMustD: the must/may classification is meaningful for
	// the respective cache (deterministic layout, modulo+LRU).
	WindowSafe         bool
	UseMustI, UseMustD bool
	// Stack is the stack analysis result (max excursion, spill bound).
	Stack *analysis.StackBound

	// Report carries the front end's diagnostics, loop table and
	// window-safety flags. BoundCycles is not populated.
	Report *Report
}

// BuildModel runs the analysis front end on p and returns the model, or
// nil with the diagnostic-bearing report when the front end fails (an
// unbounded loop, recursion, a validation error).
func BuildModel(p *prog.Program, cfg Config) (*Model, *Report) {
	a, sb, ok := prepare(p, cfg)
	if !ok {
		return nil, a.rep
	}
	m := &Model{
		Prog: p, Mode: a.mode, Platform: a.pf,
		IL1: a.il1, DL1: a.dl1,
		Layout:     a.layout,
		Funcs:      make(map[string]*FuncModel, len(a.fns)),
		Reach:      a.reach,
		WindowSafe: a.windowSafe,
		UseMustI:   a.useMustI, UseMustD: a.useMustD,
		Stack:  sb,
		Report: a.rep,
	}
	for name, fi := range a.fns {
		fm := &FuncModel{
			Fn: fi.fn, G: fi.g,
			Innermost: fi.nest.innermost,
			Plan:      fi.plan, Class: fi.cls,
			Callee: fi.callee, Base: fi.base,
			Acc: make([]DataAccess, len(fi.acc)),
		}
		for _, l := range fi.nest.loops {
			fm.Loops = append(fm.Loops, LoopRegion{
				Header: l.header, Blocks: l.blocks,
				Parent: l.parent, Depth: l.depth, Bound: l.bound,
			})
		}
		for i, acc := range fi.acc {
			fm.Acc[i] = DataAccess{
				Valid: acc.valid, Sym: acc.sym,
				Lo: acc.lo, Hi: acc.hi, Size: acc.size,
				Load: acc.load, Store: acc.store,
			}
		}
		m.Funcs[name] = fm
	}
	return m, a.rep
}

// BuildModelMode is BuildModel with exactly the wiring AnalyzeMode uses
// for the given mode: the DSR modes model the core.Transform output with
// the canonical dispatch resolver and the runtime's default stack-offset
// bound. See AnalyzeMode for the contract.
func BuildModelMode(p *prog.Program, mode Mode, base Config) (*Model, *Report, error) {
	base.Mode = mode
	if mode == ModeDet {
		m, rep := BuildModel(p, base)
		return m, rep, nil
	}
	tp, meta, _, err := core.Transform(p)
	if err != nil {
		return nil, nil, fmt.Errorf("wcet: DSR transform failed: %w", err)
	}
	base.Lines = nil
	base.Resolve = analysis.ResolveDispatch(analysis.TransformInfo{
		FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym, Funcs: meta.Funcs,
	})
	if base.Platform == nil {
		def := platform.ProximaLEON3()
		base.Platform = &def
	}
	if base.StackOffsetBound == 0 {
		base.StackOffsetBound = base.Platform.L2.WaySize()
	}
	m, rep := BuildModel(tp, base)
	return m, rep, nil
}
