package wcet

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

// FuzzWCETSound is the analyzer's standing soundness oracle: every fuzz
// input is decoded into a small structured program (counted loops up to
// two deep, integer arithmetic, loads/stores into a shared buffer,
// forward diamonds, FPU blocks, leaf calls), the static analyzer bounds
// it, the simulator runs it, and `simulated cycles ≤ static bound` must
// hold. A refusal (Bounded=false) is always acceptable — the invariant
// constrains only the bounds the analyzer is willing to claim.
func FuzzWCETSound(f *testing.F) {
	f.Add([]byte{})                                  // empty body
	f.Add([]byte{0, 1, 2, 3})                        // straight line
	f.Add([]byte{4, 10, 0, 7, 2, 9, 3, 5, 5})       // one loop with a store
	f.Add([]byte{4, 3, 4, 5, 2, 8, 5, 1, 6, 5})     // nested loops
	f.Add([]byte{6, 2, 0, 9, 6, 1, 7, 3})           // diamonds and a call
	f.Add([]byte{8, 0, 8, 5, 4, 6, 8, 2, 5, 7, 0})  // FPU inside a loop
	f.Add([]byte{4, 200, 3, 11, 4, 99, 2, 2, 5, 5}) // larger trip counts

	f.Fuzz(func(t *testing.T, data []byte) {
		p := genProgram(data)
		if p == nil {
			return
		}
		r := Analyze(p, Config{})
		if !r.Bounded {
			// Refusing is sound; claiming is what we check.
			if !r.HasErrors() {
				t.Fatalf("not bounded but no Error diagnostic:\n%s", diagText(r))
			}
			return
		}
		sim := simulate(t, p)
		if r.BoundCycles < sim {
			t.Fatalf("UNSOUND: static bound %d < simulated %d cycles\nloops: %+v\ndiags:\n%s",
				r.BoundCycles, sim, r.Loops, diagText(r))
		}
	})
}

// genProgram deterministically decodes fuzz bytes into a valid program,
// or nil when the decoded body fails to build. The grammar keeps every
// loop a counted loop over a dedicated register (L6 outer, L7 inner) so
// the generated corpus exercises inference, nesting, the cache domains
// and interprocedural composition rather than the refusal paths.
func genProgram(data []byte) *prog.Program {
	if len(data) > 96 {
		data = data[:96] // cap simulated run length
	}
	const bufWords = 64
	scratch := []isa.Reg{isa.L0, isa.L1, isa.L2, isa.L3, isa.L4}
	counters := []isa.Reg{isa.L6, isa.L7}
	intOps := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Xor, isa.Or, isa.And}

	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.I5, "buf")
	for i, r := range scratch {
		b.MovI(r, int32(i+1))
	}

	next := func(i *int) byte {
		if *i >= len(data) {
			return 0
		}
		v := data[*i]
		*i++
		return v
	}

	type openLoop struct {
		reg   isa.Reg
		bound int32
		label string
	}
	var loops []openLoop
	labelID := 0
	callUsed := false

	i := 0
	for i < len(data) {
		switch next(&i) % 9 {
		case 0, 1: // integer arithmetic
			op := intOps[int(next(&i))%len(intOps)]
			rd := scratch[int(next(&i))%len(scratch)]
			rs := scratch[int(next(&i))%len(scratch)]
			if next(&i)%2 == 0 {
				b.OpI(op, rd, rs, int32(next(&i))%17)
			} else {
				b.Op3(op, rd, rs, scratch[int(next(&i))%len(scratch)])
			}
		case 2: // load from the buffer
			rd := scratch[int(next(&i))%len(scratch)]
			b.Ld(rd, isa.I5, int32(next(&i))%bufWords*4)
		case 3: // store into the buffer
			rs := scratch[int(next(&i))%len(scratch)]
			b.St(rs, isa.I5, int32(next(&i))%bufWords*4)
		case 4: // open a counted loop
			if len(loops) >= len(counters) {
				continue
			}
			reg := counters[len(loops)]
			bound := int32(next(&i))%13 + 1
			labelID++
			l := openLoop{reg: reg, bound: bound, label: "L" + string(rune('a'+labelID%26)) + string(rune('0'+labelID/26))}
			b.MovI(reg, 0).Label(l.label)
			loops = append(loops, l)
		case 5: // close the innermost loop
			if len(loops) == 0 {
				continue
			}
			l := loops[len(loops)-1]
			loops = loops[:len(loops)-1]
			b.AddI(l.reg, l.reg, 1).CmpI(l.reg, l.bound).Bl(l.label)
		case 6: // forward diamond
			labelID++
			skip := "S" + string(rune('a'+labelID%26)) + string(rune('0'+labelID/26))
			r := scratch[int(next(&i))%len(scratch)]
			b.CmpI(r, int32(next(&i))%8)
			if next(&i)%2 == 0 {
				b.Be(skip)
			} else {
				b.Bg(skip)
			}
			b.OpI(intOps[int(next(&i))%len(intOps)], r, r, 3)
			b.Label(skip)
		case 7: // call the leaf helper
			callUsed = true
			b.Call("helper")
		case 8: // FPU block (fdiv exercises the jitter bound)
			off1 := int32(next(&i)) % bufWords * 4
			off2 := int32(next(&i)) % bufWords * 4
			f0, f1, f2, f3 := isa.FReg(0), isa.FReg(1), isa.FReg(2), isa.FReg(3)
			b.FLd(f0, isa.I5, off1).
				FLd(f1, isa.I5, off2).
				Fadd(f2, f0, f1).
				Fdiv(f3, f2, f1).
				FSt(f3, isa.I5, off2)
		}
	}
	for len(loops) > 0 { // close any loops left open
		l := loops[len(loops)-1]
		loops = loops[:len(loops)-1]
		b.AddI(l.reg, l.reg, 1).CmpI(l.reg, l.bound).Bl(l.label)
	}
	b.Halt()

	main, err := b.Build()
	if err != nil {
		return nil
	}
	p := &prog.Program{Name: "fuzz", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "buf", Size: bufWords * 4, Align: 8}); err != nil {
		return nil
	}
	if err := p.AddFunction(main); err != nil {
		return nil
	}
	if callUsed {
		helper, err := prog.NewLeaf("helper").
			AddI(isa.O0, isa.O0, 1).
			MulI(isa.O1, isa.O0, 3).
			RetLeaf().
			Build()
		if err != nil {
			return nil
		}
		if err := p.AddFunction(helper); err != nil {
			return nil
		}
	}
	if err := p.Validate(); err != nil {
		return nil
	}
	return p
}
