package wcet

import (
	"strings"
	"testing"

	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// --- helpers ---------------------------------------------------------------

func mustProgram(t *testing.T, name string, fns ...*prog.Function) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: name, Entry: "main"}
	for _, f := range fns {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// simulate runs p once on the default deterministic layout and returns
// the observed cycle count.
func simulate(t *testing.T, p *prog.Program) mem.Cycles {
	t.Helper()
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.New(platform.ProximaLEON3())
	pl.LoadImage(img)
	res, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

func diagText(r *Report) string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.Sev.String())
		sb.WriteString(": ")
		sb.WriteString(d.Msg)
		sb.WriteString("\n")
	}
	return sb.String()
}

// countedLoop builds main with a single counted loop of n iterations.
func countedLoop(n int32) *prog.Function {
	return prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0). // i
		MovI(isa.L1, 0). // sum
		Label("loop").
		Add(isa.L1, isa.L1, isa.L0).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, n).
		Bl("loop").
		Mov(isa.O0, isa.L1).
		Halt().
		MustBuild()
}

// --- trip-count unit tests -------------------------------------------------

func TestTripCount(t *testing.T) {
	cases := []struct {
		init, step, limit int64
		op                isa.Op
		want              int64
		ok                bool
	}{
		{0, 1, 10, isa.Bl, 10, true},  // i=1..; loop while i<10
		{0, 1, 10, isa.Ble, 11, true}, // loop while i<=10
		{0, 2, 10, isa.Bl, 5, true},   // 2,4,6,8,10 -> exits at 10
		{0, 3, 10, isa.Bl, 4, true},   // 3,6,9,12 -> ceil(10/3)
		{10, -1, 0, isa.Bg, 10, true}, // countdown while i>0
		{10, -2, 0, isa.Bge, 6, true}, // 8,6,4,2,0 then -2<0
		{0, 1, 10, isa.Bne, 10, true}, // exact hit
		{0, 3, 10, isa.Bne, 0, false}, // never hits 10 -> unbounded
		{0, -1, 10, isa.Bl, 0, false}, // wrong direction
		{5, 1, 3, isa.Bl, 1, true},    // body runs once (do-while)
		{0, 0, 10, isa.Bl, 0, false},  // no progress
		// Absurd counts are returned as-is; the caller (inferCounted)
		// rejects anything outside [1, 2^31].
		{0, 1, 1 << 40, isa.Bl, 1 << 40, true},
	}
	for _, c := range cases {
		got, ok := tripCount(c.init, c.step, c.limit, c.op)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("tripCount(%d,%d,%d,%v) = %d,%v; want %d,%v",
				c.init, c.step, c.limit, c.op, got, ok, c.want, c.ok)
		}
	}
}

// --- loop-bound inference --------------------------------------------------

func TestInferCountedLoop(t *testing.T) {
	p := mustProgram(t, "counted", countedLoop(10))
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if len(r.Loops) != 1 || r.Loops[0].Bound != 10 || r.Loops[0].Source != SourceInferred {
		t.Fatalf("loops = %+v; want one inferred bound of 10", r.Loops)
	}
}

func TestInferCountdownLoop(t *testing.T) {
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 16).
		Label("loop").
		SubI(isa.L0, isa.L0, 2).
		CmpI(isa.L0, 0).
		Bg("loop").
		Halt().
		MustBuild()
	p := mustProgram(t, "countdown", f)
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if len(r.Loops) != 1 || r.Loops[0].Bound != 8 {
		t.Fatalf("loops = %+v; want bound 8", r.Loops)
	}
}

func TestNestedLoopBounds(t *testing.T) {
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		Label("outer").
		MovI(isa.L1, 0).
		Label("inner").
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, 5).
		Bl("inner").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 3).
		Bl("outer").
		Halt().
		MustBuild()
	p := mustProgram(t, "nested", f)
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if len(r.Loops) != 2 {
		t.Fatalf("want 2 loops, got %+v", r.Loops)
	}
	bounds := map[int]int{}
	for _, l := range r.Loops {
		bounds[l.Depth] = l.Bound
	}
	if bounds[1] != 3 || bounds[2] != 5 {
		t.Fatalf("nest bounds = %+v; want outer 3 (depth 1), inner 5 (depth 2)", r.Loops)
	}
}

func TestAnnotatedLoopFallback(t *testing.T) {
	// The limit is loaded from memory, so inference fails; the
	// annotation supplies the bound.
	build := func(annotate bool) *prog.Program {
		b := prog.NewFunc("main", prog.MinFrame).
			Prologue().
			Set(isa.L2, "lim").
			Ld(isa.L3, isa.L2, 0).
			MovI(isa.L0, 0).
			Label("loop")
		if annotate {
			b.LoopBound(16)
		}
		b.AddI(isa.L0, isa.L0, 1).
			Cmp(isa.L0, isa.L3).
			Bl("loop").
			Halt()
		p := &prog.Program{Name: "annotated", Entry: "main"}
		if err := p.AddData(&prog.DataObject{Name: "lim", Size: 4, Align: 8, Init: []uint32{10}}); err != nil {
			panic(err)
		}
		if err := p.AddFunction(b.MustBuild()); err != nil {
			panic(err)
		}
		return p
	}

	r := Analyze(build(true), Config{})
	if !r.Bounded {
		t.Fatalf("annotated program not bounded:\n%s", diagText(r))
	}
	if len(r.Loops) != 1 || r.Loops[0].Bound != 16 || r.Loops[0].Source != SourceAnnotated {
		t.Fatalf("loops = %+v; want one annotated bound of 16", r.Loops)
	}

	r = Analyze(build(false), Config{})
	if r.Bounded {
		t.Fatal("unbounded loop accepted")
	}
	if !r.HasErrors() || !strings.Contains(diagText(r), "dsr:loop-bound") {
		t.Fatalf("want a hard diagnostic pointing at dsr:loop-bound, got:\n%s", diagText(r))
	}
}

func TestInferenceWinsOverAnnotation(t *testing.T) {
	// An annotated loop whose bound IS inferable: inference wins, and a
	// mismatching annotation draws a warning.
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		Label("loop").
		LoopBound(99).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 10).
		Bl("loop").
		Halt().
		MustBuild()
	p := mustProgram(t, "both", f)
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if len(r.Loops) != 1 || r.Loops[0].Bound != 10 || r.Loops[0].Source != SourceInferred {
		t.Fatalf("loops = %+v; want inferred 10 over annotated 99", r.Loops)
	}
	if !strings.Contains(diagText(r), "disagrees") {
		t.Fatalf("want a mismatch warning, got:\n%s", diagText(r))
	}
}

// --- interprocedural edge cases --------------------------------------------

func TestRecursionRejected(t *testing.T) {
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Call("main").
		Halt().
		MustBuild()
	p := mustProgram(t, "recursive", f)
	r := Analyze(p, Config{})
	if r.Bounded {
		t.Fatal("recursive program accepted; the bound would be meaningless")
	}
	if !strings.Contains(diagText(r), "recursion") {
		t.Fatalf("want a recursion diagnostic, got:\n%s", diagText(r))
	}
}

func TestUnresolvedIndirectCallRejected(t *testing.T) {
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "helper").
		Emit(isa.Instr{Op: isa.CallR, Rs1: isa.L0}).
		Halt().
		MustBuild()
	h := prog.NewLeaf("helper").Nop().RetLeaf().MustBuild()
	p := mustProgram(t, "indirect", f, h)
	r := Analyze(p, Config{})
	if r.Bounded {
		t.Fatal("unresolved indirect call accepted")
	}
	if !strings.Contains(diagText(r), "indirect call") {
		t.Fatalf("want an indirect-call diagnostic, got:\n%s", diagText(r))
	}
}

func TestDirectCallComposition(t *testing.T) {
	leaf := prog.NewLeaf("twice").
		Add(isa.O0, isa.O0, isa.O0).
		RetLeaf().
		MustBuild()
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.O0, 21).
		Call("twice").
		Halt().
		MustBuild()
	p := mustProgram(t, "call", f, leaf)
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if r.FuncCycles["twice"] == 0 || r.FuncCycles["main"] <= r.FuncCycles["twice"] {
		t.Fatalf("func cycles %v: main must include its callee", r.FuncCycles)
	}
	if sim := simulate(t, p); r.BoundCycles < sim {
		t.Fatalf("bound %d < simulated %d", r.BoundCycles, sim)
	}
}

// --- end-to-end soundness + precision --------------------------------------

func TestBoundSoundOnCountedLoop(t *testing.T) {
	for _, n := range []int32{1, 7, 64, 500} {
		p := mustProgram(t, "counted", countedLoop(n))
		r := Analyze(p, Config{})
		if !r.Bounded {
			t.Fatalf("n=%d not bounded:\n%s", n, diagText(r))
		}
		sim := simulate(t, p)
		if r.BoundCycles < sim {
			t.Fatalf("n=%d: bound %d < simulated %d (UNSOUND)", n, r.BoundCycles, sim)
		}
		// Precision guard: a hot counted loop must not be charged a
		// cache miss per iteration once the must analysis has warmed up.
		if over := float64(r.BoundCycles) / float64(sim); over > 8 {
			t.Errorf("n=%d: bound %d is %.1fx the observed %d — precision regression", n, r.BoundCycles, over, sim)
		}
	}
}

func TestBoundSoundWithMemoryTraffic(t *testing.T) {
	p := &prog.Program{Name: "memtraffic", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "arr", Size: 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	f := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "arr").
		MovI(isa.L1, 0).
		MovI(isa.L3, 0).
		Label("loop").
		Ld(isa.L4, isa.L0, 0).
		Add(isa.L3, isa.L3, isa.L4).
		St(isa.L3, isa.L0, 0).
		AddI(isa.L0, isa.L0, 4).
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, 256).
		Bl("loop").
		Mov(isa.O0, isa.L3).
		Halt().
		MustBuild()
	if err := p.AddFunction(f); err != nil {
		t.Fatal(err)
	}
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	sim := simulate(t, p)
	if r.BoundCycles < sim {
		t.Fatalf("bound %d < simulated %d (UNSOUND)", r.BoundCycles, sim)
	}
}

func TestDSRModesBoundedAndOrdered(t *testing.T) {
	p := mustProgram(t, "counted", countedLoop(32))
	det := Analyze(p, Config{Mode: ModeDet})
	eager := Analyze(p, Config{Mode: ModeDSREager})
	lazy := Analyze(p, Config{Mode: ModeDSRLazy, RelocBound: 1000})
	for name, r := range map[string]*Report{"det": det, "eager": eager, "lazy": lazy} {
		if !r.Bounded {
			t.Fatalf("%s not bounded:\n%s", name, diagText(r))
		}
	}
	// Randomisation can only lose static precision: the placement-join
	// bound dominates the exact-layout bound, and lazy (no persistence,
	// plus the relocation charge) dominates eager.
	if eager.BoundCycles < det.BoundCycles {
		t.Errorf("eager bound %d < det bound %d", eager.BoundCycles, det.BoundCycles)
	}
	if lazy.BoundCycles < eager.BoundCycles {
		t.Errorf("lazy bound %d < eager bound %d", lazy.BoundCycles, eager.BoundCycles)
	}
	if det.AlwaysHit == 0 {
		t.Error("det mode classified no always-hits on a tight loop")
	}
	if eager.AlwaysHit != 0 {
		t.Errorf("DSR mode must not classify exact hits, got %d", eager.AlwaysHit)
	}
	sim := simulate(t, p)
	if det.BoundCycles < sim {
		t.Fatalf("det bound %d < simulated %d", det.BoundCycles, sim)
	}
}

func TestHardwareRandomisedCacheDefeatsAnalysis(t *testing.T) {
	// The A4 ablation: random cache placement defeats the must/may
	// domains by design. The analyzer must stay sound by classifying
	// nothing and warning, not by pretending.
	pf := platform.ProximaLEON3()
	pf.IL1.Placement = cache.PlacementHashRandom
	pf.DL1.Placement = cache.PlacementHashRandom
	p := mustProgram(t, "counted", countedLoop(16))
	r := Analyze(p, Config{Platform: &pf})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if r.AlwaysHit != 0 {
		t.Errorf("classified %d always-hits under randomised placement", r.AlwaysHit)
	}
	if !strings.Contains(diagText(r), "modulo") {
		t.Fatalf("want a cache-policy warning, got:\n%s", diagText(r))
	}
}

func TestSaturationFlag(t *testing.T) {
	// Deep nest of annotated huge bounds must saturate, not overflow.
	b := prog.NewFunc("main", prog.MinFrame).Prologue()
	for i := 0; i < 6; i++ {
		r := isa.L0 + isa.Reg(i)
		b.MovI(r, 0).Label("l" + string(rune('a'+i)))
	}
	for i := 5; i >= 0; i-- {
		r := isa.L0 + isa.Reg(i)
		b.AddI(r, r, 1).
			CmpI(r, 2000000000).
			Bl("l" + string(rune('a'+i)))
	}
	b.Halt()
	p := mustProgram(t, "huge", b.MustBuild())
	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("not bounded:\n%s", diagText(r))
	}
	if !r.Saturated {
		t.Fatalf("2e9^6-iteration nest did not saturate (bound %d)", r.BoundCycles)
	}
	if r.BoundCycles < satCap {
		t.Fatalf("saturated bound %d below the cap", r.BoundCycles)
	}
}
