package wcet

import (
	"fmt"

	"dsr/internal/analysis"
	"dsr/internal/core"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// AnalyzeMode bounds the build variant that actually runs under mode,
// so callers (cmd/dsrwcet, the soundness gate, the experiments harness)
// cannot wire the analysis differently from the runtime:
//
//   - ModeDet analyses p itself on the deterministic sequential layout
//     (the paper's COTS baseline);
//   - the DSR modes analyse the core.Transform output — the program the
//     DSR runtime executes — with the canonical dispatch resolver for
//     the transform's indirect calls and the runtime's default
//     stack-offset bound (the platform's L2 way size, matching
//     core.Options.fillDefaults);
//   - ModeDSRLazy additionally derives the per-function relocation
//     charge from the platform (RelocCostBound) unless base.RelocBound
//     is already set.
//
// base.Mode is overridden by mode; base.Lines is dropped for the DSR
// modes because instruction indices move under the transform.
func AnalyzeMode(p *prog.Program, mode Mode, base Config) (*Report, error) {
	base.Mode = mode
	if mode == ModeDet {
		return Analyze(p, base), nil
	}
	tp, meta, _, err := core.Transform(p)
	if err != nil {
		return nil, fmt.Errorf("wcet: DSR transform failed: %w", err)
	}
	base.Lines = nil
	base.Resolve = analysis.ResolveDispatch(analysis.TransformInfo{
		FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym, Funcs: meta.Funcs,
	})
	if base.Platform == nil {
		def := platform.ProximaLEON3()
		base.Platform = &def
	}
	if base.StackOffsetBound == 0 {
		base.StackOffsetBound = base.Platform.L2.WaySize()
	}
	if mode == ModeDSRLazy && base.RelocBound == 0 {
		base.RelocBound = RelocCostBound(tp, base.Platform, base.BusContention)
	}
	return Analyze(tp, base), nil
}
