// Natural-loop extraction and loop-bound resolution.
//
// The analyzer needs, for every natural loop of every function, a finite
// upper bound on the iterations per entry. Bounds come from two sources,
// in priority order:
//
//  1. Counted-loop inference: the classic compiler-generated shape
//     (single back edge, a unique `add/sub r, #step, r` increment that
//     executes exactly once per iteration, a `cmp r, #limit` feeding the
//     back-edge branch, a constant initial value flowing in from outside
//     the loop). The trip count follows from (init, step, limit, branch
//     condition); inference also installs the pin and back-edge
//     refinement that make the symbolic dataflow (value.go) precise over
//     the induction register.
//
//  2. `dsr:loop-bound N` source annotations (prog.Function.LoopBounds),
//     attached to the innermost loop containing the annotated
//     instruction.
//
// A loop with neither is a hard Error diagnostic — the analyzer refuses
// to emit a bound rather than silently producing ∞ or a guess.
package wcet

import (
	"sort"

	"dsr/internal/analysis"
	"dsr/internal/isa"
)

// cfgView is the CFG shape the wcet package analyses; it is exactly the
// lint layer's CFG (blocks, reachability, dominators, back edges).
type cfgView = analysis.CFG

// Bound sources reported in LoopBound.Source.
const (
	SourceInferred  = "inferred"
	SourceAnnotated = "annotated"
)

// loopInfo is one natural loop (all back edges sharing a header merged).
type loopInfo struct {
	header int          // header block ID
	blocks map[int]bool // block IDs in the loop (header included)
	tails  []int        // back-edge tail blocks
	parent int          // index of the innermost enclosing loop, -1 for top level
	depth  int          // 1 = outermost

	bound  int    // max iterations per entry; 0 = unresolved
	source string // SourceInferred | SourceAnnotated | ""
	why    string // inference refusal reason (for the diagnostic)

	// counted-loop inference results (source == SourceInferred).
	incIdx int // instruction index of the unique increment
	reg    isa.Reg
	init   int64
	step   int64
	limit  int64
	brOp   isa.Op
}

// loopNest is the loop forest of one function.
type loopNest struct {
	loops []*loopInfo
	// innermost[b] is the index in loops of the innermost loop containing
	// block b, or -1.
	innermost []int
}

// buildLoopNest extracts natural loops from the CFG's back edges, merges
// loops sharing a header, and computes the nesting forest.
func buildLoopNest(g *cfgView) *loopNest {
	byHeader := map[int]*loopInfo{}
	var loops []*loopInfo
	for _, e := range g.BackEdges {
		tail, head := e[0], e[1]
		l := byHeader[head]
		if l == nil {
			l = &loopInfo{header: head, blocks: map[int]bool{head: true}, parent: -1}
			byHeader[head] = l
			loops = append(loops, l)
		}
		l.tails = append(l.tails, tail)
		// Classic natural-loop body collection: walk predecessors back
		// from the tail until the header.
		stack := []int{tail}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.blocks[b] {
				continue
			}
			l.blocks[b] = true
			for _, p := range g.Blocks[b].Preds {
				stack = append(stack, p)
			}
		}
	}
	// Deterministic order: by header, ties impossible after merging.
	sort.Slice(loops, func(i, j int) bool { return loops[i].header < loops[j].header })

	nest := &loopNest{loops: loops, innermost: make([]int, len(g.Blocks))}
	for i := range nest.innermost {
		nest.innermost[i] = -1
	}
	// Parent: the smallest strictly larger loop containing the header.
	for i, l := range loops {
		best := -1
		for j, o := range loops {
			if i == j || !o.blocks[l.header] || len(o.blocks) <= len(l.blocks) {
				continue
			}
			if best < 0 || len(o.blocks) < len(loops[best].blocks) {
				best = j
			}
		}
		l.parent = best
	}
	for _, l := range loops {
		l.depth = 1
		for p := l.parent; p >= 0; p = loops[p].parent {
			l.depth++
		}
	}
	// innermost[b]: the containing loop with the greatest depth.
	for b := range nest.innermost {
		best := -1
		for j, l := range loops {
			if !l.blocks[b] {
				continue
			}
			if best < 0 || l.depth > loops[best].depth {
				best = j
			}
		}
		nest.innermost[b] = best
	}
	return nest
}

// blockOut replays block b from its converged entry state and returns
// the state at the block's exit.
func (d *dataflow) blockOut(b int) regState {
	st := d.in[b]
	for i := d.g.Blocks[b].Start; i < d.g.Blocks[b].End; i++ {
		d.step(i, &st)
	}
	return st
}

// writesIntReg reports whether in writes integer register r.
func writesIntReg(in *isa.Instr, r isa.Reg) bool {
	switch in.Op {
	case isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Sll, isa.Srl,
		isa.Sra, isa.Mul, isa.Div, isa.Set, isa.Mov, isa.Ld, isa.Ldub:
		return in.Rd == r
	}
	return false
}

// inferCounted attempts counted-loop inference for l, using the phase-1
// dataflow d (run with call clobbers but no pins). On success it fills
// l.bound/source/incIdx/reg/init/step/limit/brOp; on failure it records
// the refusal reason in l.why.
func (d *dataflow) inferCounted(g *cfgView, nest *loopNest, li int) bool {
	l := nest.loops[li]
	fail := func(why string) bool { l.why = why; return false }

	if len(l.tails) != 1 {
		return fail("multiple back edges")
	}
	tail := l.tails[0]
	tb := g.Blocks[tail]
	brIdx := tb.End - 1
	br := &d.fn.Code[brIdx]
	switch br.Op {
	case isa.Bl, isa.Ble, isa.Bg, isa.Bge, isa.Bne:
	case isa.Ba:
		return fail("unconditional back edge")
	default:
		return fail("back edge is not an integer conditional branch")
	}
	if brIdx+int(br.Disp) != g.Blocks[l.header].Start {
		return fail("back-edge branch does not target the loop header")
	}

	// The last condition-code write before the branch must be our
	// `cmp r, #limit`. Only Cmp/FCmp write condition codes in this ISA.
	cmpIdx := -1
	for j := brIdx - 1; j >= tb.Start; j-- {
		if d.fn.Code[j].Op == isa.Cmp {
			cmpIdx = j
			break
		}
	}
	if cmpIdx < 0 {
		return fail("no cmp in the back-edge block")
	}
	cmp := &d.fn.Code[cmpIdx]
	if !cmp.UseImm {
		return fail("loop test compares two registers (limit not an immediate)")
	}
	r := cmp.Rs1
	if r == isa.G0 {
		return fail("loop test reads %g0")
	}
	limit := int64(cmp.Imm)

	// Unique-writer scan over the whole loop body.
	incIdx := -1
	for b := range l.blocks {
		blk := g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			in := &d.fn.Code[i]
			switch in.Op {
			case isa.Save, isa.SaveX, isa.Restore:
				return fail("loop contains a register-window operation")
			case isa.Call, isa.CallR:
				cb := d.clobbers[i]
				if cb.all {
					return fail("loop contains a call with unknown clobbers")
				}
				for _, cr := range cb.regs {
					if cr == r {
						return fail("a call inside the loop may clobber the induction register")
					}
				}
				if r == isa.O7 {
					return fail("induction register %o7 is clobbered by calls")
				}
			}
			if writesIntReg(in, r) {
				if incIdx >= 0 {
					return fail("induction register has multiple writers in the loop")
				}
				incIdx = i
			}
		}
	}
	if incIdx < 0 {
		return fail("induction register is never written in the loop")
	}
	inc := &d.fn.Code[incIdx]
	if (inc.Op != isa.Add && inc.Op != isa.Sub) || !inc.UseImm || inc.Rs1 != r {
		return fail("induction update is not `add/sub r, #step, r`")
	}
	step := int64(inc.Imm)
	if inc.Op == isa.Sub {
		step = -step
	}
	if step == 0 {
		return fail("induction step is zero")
	}

	// The increment must execute exactly once per iteration: its block
	// dominates the tail (at least once per header→tail traversal, see
	// the dominance argument in the package comment of value.go) and is
	// not inside a nested loop (at most once).
	incBlk := g.BlockOf(incIdx)
	if !g.Dominates(incBlk, tail) {
		return fail("induction update does not dominate the back edge")
	}
	if incBlk == tail && incIdx > cmpIdx {
		return fail("induction update follows the loop test")
	}
	if nest.innermost[incBlk] != li {
		return fail("induction update sits inside a nested loop")
	}

	// Initial value: meet over the header's out-of-loop predecessors.
	init := value{}
	first := true
	for _, p := range g.Blocks[l.header].Preds {
		if l.blocks[p] || !g.Reachable[p] {
			continue
		}
		out := d.blockOut(p)
		if first {
			init, first = out.get(r), false
		} else {
			init = meet(init, out.get(r))
		}
	}
	if first {
		return fail("loop header has no out-of-loop predecessor")
	}
	if !init.isConst() {
		return fail("initial value of the induction register is not a known constant")
	}
	iv := init.constVal()

	n, ok := tripCount(iv, step, limit, br.Op)
	if !ok {
		return fail("branch condition and step direction do not form a counted loop")
	}
	if n < 1 || n > int64(1)<<31 {
		return fail("computed trip count out of range")
	}

	l.bound, l.source = int(n), SourceInferred
	l.incIdx, l.reg, l.init, l.step, l.limit, l.brOp = incIdx, r, iv, step, limit, br.Op
	return true
}

// tripCount computes the iteration count of a do-while counted loop:
// the body executes, the increment brings r to init + k·step at the
// k-th test, and the branch continues while its condition holds.
func tripCount(init, step, limit int64, op isa.Op) (int64, bool) {
	ceilDiv := func(a, b int64) int64 { return (a + b - 1) / b }
	switch op {
	case isa.Bl: // continue while r < limit
		if step <= 0 {
			return 0, false
		}
		n := ceilDiv(limit-init, step)
		if n < 1 {
			n = 1
		}
		return n, true
	case isa.Ble: // continue while r <= limit
		if step <= 0 {
			return 0, false
		}
		n := (limit-init)/step + 1
		if n < 1 {
			n = 1
		}
		return n, true
	case isa.Bg: // continue while r > limit
		if step >= 0 {
			return 0, false
		}
		n := ceilDiv(init-limit, -step)
		if n < 1 {
			n = 1
		}
		return n, true
	case isa.Bge: // continue while r >= limit
		if step >= 0 {
			return 0, false
		}
		n := (init-limit)/(-step) + 1
		if n < 1 {
			n = 1
		}
		return n, true
	case isa.Bne: // continue while r != limit: needs exact arrival
		d := limit - init
		if step > 0 && d > 0 && d%step == 0 {
			return d / step, true
		}
		if step < 0 && d < 0 && d%step == 0 {
			return d / step, true
		}
		return 0, false
	}
	return 0, false
}

// installPrecision wires an inferred loop's pin and back-edge refinement
// into the dataflow, so the phase-2 run tracks the induction register's
// exact iteration range instead of widening it to Top.
func (d *dataflow) installPrecision(l *loopInfo) {
	if l.source != SourceInferred {
		return
	}
	lo := l.init + l.step
	hi := l.init + int64(l.bound)*l.step
	if l.step < 0 {
		lo, hi = hi, lo
	}
	d.pins[l.incIdx] = vRange(lo, hi)

	reg, brOp, limit := l.reg, l.brOp, l.limit
	step := l.step
	d.refine[edgeKey{l.tails[0], l.header}] = func(st *regState) {
		v := st.get(reg)
		if v.kind != vInt {
			return
		}
		nlo, nhi := v.lo, v.hi
		switch brOp {
		case isa.Bl:
			if nhi > limit-1 {
				nhi = limit - 1
			}
		case isa.Ble:
			if nhi > limit {
				nhi = limit
			}
		case isa.Bg:
			if nlo < limit+1 {
				nlo = limit + 1
			}
		case isa.Bge:
			if nlo < limit {
				nlo = limit
			}
		case isa.Bne:
			// Values arrive exactly at limit on exit; continuing means
			// one step short of it.
			if step > 0 && nhi > limit-step {
				nhi = limit - step
			}
			if step < 0 && nlo < limit-step {
				nlo = limit - step
			}
		}
		st.set(reg, vRange(nlo, nhi))
	}
}

// resolveBounds runs inference over every loop of the nest, merges
// `dsr:loop-bound` annotations, installs pins/refinements for inferred
// loops, and emits diagnostics through diag. It returns false if any
// loop remains unbounded.
func (d *dataflow) resolveBounds(g *cfgView, nest *loopNest, diag func(sev analysis.Severity, idx int, format string, args ...interface{})) bool {
	for li := range nest.loops {
		d.inferCounted(g, nest, li)
	}

	// Annotations, in deterministic instruction order.
	var idxs []int
	for i := range d.fn.LoopBounds {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	annotated := map[int]int{} // loop index -> annotating instruction
	for _, i := range idxs {
		n := d.fn.LoopBounds[i]
		li := nest.innermost[g.BlockOf(i)]
		if li < 0 {
			diag(analysis.Warning, i, "dsr:loop-bound %d annotates an instruction outside any loop", n)
			continue
		}
		l := nest.loops[li]
		if prev, dup := annotated[li]; dup {
			if l.bound != n || l.source != SourceAnnotated {
				diag(analysis.Error, i, "conflicting dsr:loop-bound annotations for one loop (instructions %d and %d)", prev, i)
			}
			continue
		}
		annotated[li] = i
		switch l.source {
		case SourceInferred:
			if l.bound != n {
				diag(analysis.Warning, i,
					"dsr:loop-bound %d disagrees with the inferred bound %d; keeping the inferred bound", n, l.bound)
			}
		default:
			l.bound, l.source = n, SourceAnnotated
		}
	}

	ok := true
	for _, l := range nest.loops {
		if l.source == SourceInferred {
			d.installPrecision(l)
		}
		if l.bound == 0 {
			why := l.why
			if why == "" {
				why = "shape not recognised"
			}
			diag(analysis.Error, g.Blocks[l.header].Start,
				"loop has no inferable bound (%s) and no dsr:loop-bound annotation", why)
			ok = false
		}
	}
	return ok
}
