// Cost model and IPET-style bound computation.
//
// The per-instruction core cost comes from the shared timing table
// (internal/timing) — the same Model the simulator charges from, so the
// two cannot drift. Memory-hierarchy stalls are bounded here from the
// platform configuration:
//
//   - every L1 miss is charged the worst full-hierarchy latency (bus +
//     L2 hit/miss with dirty-victim writeback + DRAM line fill), derived
//     generically from the cache/bus/DRAM configs;
//   - stores on the write-through DL1 are charged the store-buffer-
//     adjusted worst (max(0, hierarchy − StoreHidden)), mirroring
//     cpu.storeAccess;
//   - register-window spills/fills are charged per Save/Restore/Ret
//     only when the stack analysis cannot prove the program window-safe;
//   - TLB walks are charged through a page budget (wcet.go): when the
//     program's page working set fits the fully-associative LRU TLB,
//     each page walks at most once.
//
// Miss counts are bounded three ways, strongest applicable wins:
//
//  1. must-analysis always-hits (deterministic layout, modulo+LRU);
//  2. loop persistence ("hotness"): a loop region whose instruction or
//     data footprint provably fits its cache pays each footprint line's
//     miss once per region entry and nothing per iteration — for data
//     this requires every load AND store in the region (and its
//     callees) to be statically known, since an unknown store could age
//     a footprint line to eviction;
//  3. distinct-line counting per basic block: fetch addresses within a
//     block strictly increase, so a block execution misses at most once
//     per distinct line it spans, under any placement and replacement —
//     the placement-independent fallback that keeps DSR-mode bounds
//     finite.
//
// The bound itself is the classic loop-nest collapse: per region
// (function body or natural loop), build the DAG of blocks and
// collapsed child loops, take the longest path (Kahn topological order;
// a cycle or an edge into a loop's non-header is reported as
// irreducible), and multiply child-loop bodies by their iteration
// bounds. Interprocedural composition is context-insensitive over the
// call graph, memoised per (function, hotI, hotD); recursion is a hard
// Error. All arithmetic saturates at satCap and sets Report.Saturated.
package wcet

import (
	"sort"
	"strings"

	"dsr/internal/analysis"
	"dsr/internal/analysis/cachedom"
	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/timing"
)

// satCap is the saturation ceiling for cycle arithmetic.
const satCap = mem.Cycles(1) << 62

// latModel holds the derived worst-case memory-stall latencies.
type latModel struct {
	fetchBase mem.Cycles // per fetch: ITLB hit + IL1 hit (+ walk fallback)
	il1MissX  mem.Cycles // extra per IL1 fetch miss
	loadBase  mem.Cycles // per load: DTLB hit + DL1 hit (+ walk fallback)
	dl1MissX  mem.Cycles // extra per DL1 load miss
	storeX    mem.Cycles // per store beyond StoreBase (DTLB hit + buffered WT worst)
	spillX    mem.Cycles // per Save/SaveX when not window-safe
	fillX     mem.Cycles // per Restore/Ret when not window-safe
	walkI     mem.Cycles // one full ITLB page-table walk
	walkD     mem.Cycles // one full DTLB page-table walk
}

// deriveLat derives the worst-case stall latencies from the platform
// configuration. cont is an optional per-bus-transaction contention
// delay; itlbWalkEach/dtlbWalkEach charge a full walk on every access
// (the fallback when the page working set overflows the TLB).
func deriveLat(pf *platform.Config, tm timing.Model, cont mem.Cycles, itlbWalkEach, dtlbWalkEach bool) latModel {
	busR := pf.Bus.ReadLatency + cont
	busW := pf.Bus.WriteLatency + cont
	words := func(bytes int) mem.Cycles { return mem.Cycles((bytes + 3) / 4) }
	dramR := func(bytes int) mem.Cycles { return pf.DRAM.AccessLatency + words(bytes)*pf.DRAM.PerWord }
	dramW := dramR // symmetric in the DRAM model

	// L2 worst read: hit latency + dirty-victim writeback + line fill.
	l2Read := pf.L2.HitLatency + dramR(pf.L2.LineSize)
	if pf.L2.Write == cache.WriteBackAllocate {
		l2Read += dramW(pf.L2.LineSize)
	}
	// L2 worst write: allocate-on-miss (victim writeback + fill), or a
	// straight word write-through.
	var l2Write mem.Cycles
	if pf.L2.Write == cache.WriteBackAllocate {
		l2Write = pf.L2.HitLatency + dramW(pf.L2.LineSize) + dramR(pf.L2.LineSize)
	} else {
		l2Write = pf.L2.HitLatency + dramW(mem.WordSize)
	}

	// IL1 victims are never dirty — the instruction cache is only ever
	// read — so a fetch miss costs exactly one L2-path read.
	il1MissX := busR + l2Read
	dl1MissX := busR + l2Read
	if pf.DL1.Write == cache.WriteBackAllocate {
		dl1MissX += busW + l2Write // dirty victim writeback
	}

	var storeLat mem.Cycles
	if pf.DL1.Write == cache.WriteThroughNoAllocate {
		storeLat = pf.DL1.HitLatency + busW + l2Write
	} else {
		storeLat = pf.DL1.HitLatency + busW + l2Write + busR + l2Read
	}
	var storeAdj mem.Cycles
	if storeLat > tm.StoreHidden {
		storeAdj = storeLat - tm.StoreHidden
	}

	walkI := mem.Cycles(pf.ITLB.WalkReads) * (busR + l2Read)
	walkD := mem.Cycles(pf.DTLB.WalkReads) * (busR + l2Read)

	itlbAcc := pf.ITLB.HitLatency
	if itlbWalkEach {
		itlbAcc += walkI
	}
	dtlbAcc := pf.DTLB.HitLatency
	if dtlbWalkEach {
		dtlbAcc += walkD
	}

	return latModel{
		fetchBase: itlbAcc + pf.IL1.HitLatency,
		il1MissX:  il1MissX,
		loadBase:  dtlbAcc + pf.DL1.HitLatency,
		dl1MissX:  dl1MissX,
		storeX:    dtlbAcc + storeAdj,
		spillX:    tm.TrapOverhead + 16*(dtlbAcc+tm.StoreBase+storeAdj),
		fillX:     tm.TrapOverhead + 16*(dtlbAcc+tm.LoadUse+pf.DL1.HitLatency+dl1MissX),
		walkI:     walkI,
		walkD:     walkD,
	}
}

// RelocCostBound statically bounds the cost of relocating any single
// function of p at run time — the charge core.Runtime's first-call hook
// adds inside the measured window under lazy relocation. The model
// mirrors Runtime.relocationCost from above: a word-copy loop in which
// every read misses the DL1 (worst full hierarchy latency, dirty victim
// included on a write-back DL1) and every write takes the uncovered
// write path, then the SPARC v8 consistency routine — an L2 writeback
// sweep of the new range with every line dirty (one probe cycle plus a
// DRAM line write each) and IL1/L2 invalidation probes of the old range
// (one cycle per line). cont is the optional worst-case per-bus-
// transaction contention delay. Feed the result into Config.RelocBound
// when analysing ModeDSRLazy; ModeDSRLazy charges it once per function.
func RelocCostBound(p *prog.Program, pf *platform.Config, cont mem.Cycles) mem.Cycles {
	busR := pf.Bus.ReadLatency + cont
	busW := pf.Bus.WriteLatency + cont
	words := func(bytes int) mem.Cycles { return mem.Cycles((bytes + 3) / 4) }
	dramR := func(bytes int) mem.Cycles { return pf.DRAM.AccessLatency + words(bytes)*pf.DRAM.PerWord }
	dramW := dramR

	l2Read := pf.L2.HitLatency + dramR(pf.L2.LineSize)
	if pf.L2.Write == cache.WriteBackAllocate {
		l2Read += dramW(pf.L2.LineSize)
	}
	var l2Write mem.Cycles
	if pf.L2.Write == cache.WriteBackAllocate {
		l2Write = pf.L2.HitLatency + dramW(pf.L2.LineSize) + dramR(pf.L2.LineSize)
	} else {
		l2Write = pf.L2.HitLatency + dramW(mem.WordSize)
	}

	readWorst := pf.DL1.HitLatency + busR + l2Read
	if pf.DL1.Write == cache.WriteBackAllocate {
		readWorst += busW + l2Write // dirty victim writeback on the fill
	}
	var writeWorst mem.Cycles
	if pf.DL1.Write == cache.WriteThroughNoAllocate {
		writeWorst = pf.DL1.HitLatency + busW + l2Write
	} else {
		writeWorst = pf.DL1.HitLatency + busW + l2Write + busR + l2Read
	}

	lines := func(size int64, lineSz int) mem.Cycles {
		if size <= 0 {
			return 0
		}
		return mem.Cycles((size-1)/int64(lineSz)) + 1
	}

	var worst mem.Cycles
	for _, f := range p.Functions {
		size := int64(f.SizeBytes())
		c := mem.Cycles(size/int64(mem.WordSize)) * (readWorst + writeWorst + 2)
		// L2 writeback of the new range: every probed line dirty.
		c += lines(size, pf.L2.LineSize) * (1 + dramW(pf.L2.LineSize))
		// Invalidation probes of the old range.
		c += lines(size, pf.IL1.LineSize)
		c += lines(size, pf.L2.LineSize)
		if c > worst {
			worst = c
		}
	}
	return worst
}

// satAdd / satMul saturate at satCap and record the overflow.
func (a *analyzer) satAdd(x, y mem.Cycles) mem.Cycles {
	if x > satCap-y {
		a.rep.Saturated = true
		return satCap
	}
	return x + y
}

func (a *analyzer) satMul(n int, x mem.Cycles) mem.Cycles {
	if n <= 0 || x == 0 {
		return 0
	}
	if x > satCap/mem.Cycles(n) {
		a.rep.Saturated = true
		return satCap
	}
	return mem.Cycles(n) * x
}

// ---------------------------------------------------------------------
// Cache footprints and loop persistence.

// footprint accumulates a region's per-set cache working set, split into
// exactly-placed lines (deterministic layout) and relatively-counted
// lines (objects whose base is unknown but 8-byte aligned: stack frames
// in every mode, all objects under DSR). k consecutive lines fall into
// k consecutive sets, so an unknown-base object of k lines adds at most
// ceil(k/sets) lines to every set.
type footprint struct {
	dom      *cachedom.Dom
	exact    []map[mem.Addr]bool
	rel      []int
	relLines int
}

func newFootprint(dom *cachedom.Dom) *footprint {
	return &footprint{dom: dom, exact: make([]map[mem.Addr]bool, dom.NSets), rel: make([]int, dom.NSets)}
}

// addRange adds the concretely-placed lines covering [lo, hi] (byte
// addresses, inclusive).
func (fp *footprint) addRange(lo, hi mem.Addr) {
	for l := fp.dom.LineOf(lo); l <= fp.dom.LineOf(hi); l++ {
		s := fp.dom.SetOf(l)
		if fp.exact[s] == nil {
			fp.exact[s] = map[mem.Addr]bool{}
		}
		fp.exact[s][l] = true
	}
}

// addRelative adds an unknown-base object spanning at most k lines.
func (fp *footprint) addRelative(k int) {
	per := (k + int(fp.dom.NSets) - 1) / int(fp.dom.NSets)
	for s := range fp.rel {
		fp.rel[s] += per
	}
	fp.relLines += k
}

// fits reports whether every set's footprint is within the cache's
// associativity, and lines returns the total distinct-line count (the
// one-time miss charge).
func (fp *footprint) fits() bool {
	for s := range fp.rel {
		if len(fp.exact[s])+fp.rel[s] > fp.dom.NWays {
			return false
		}
	}
	return true
}

func (fp *footprint) lines() int {
	n := fp.relLines
	for s := range fp.exact {
		n += len(fp.exact[s])
	}
	return n
}

// relLineSpan bounds the distinct cache lines an unknown-base (8-byte
// aligned) object of size bytes can span.
func relLineSpan(size int64, lineSz mem.Addr) int {
	if size <= 0 {
		return 1
	}
	return int((size-1)/int64(lineSz)) + 2
}

type fitKey struct {
	fn string
	li int
}

type fitRes struct {
	fitI, fitD     bool
	linesI, linesD int
}

// regionFit decides loop persistence for loop li of fi. Results are
// independent of the hot flags and memoised.
func (a *analyzer) regionFit(fi *fnInfo, li int) fitRes {
	key := fitKey{fi.fn.Name, li}
	if r, ok := a.fit[key]; ok {
		return r
	}
	var r fitRes
	if a.hotIOK {
		fpI := newFootprint(a.il1)
		if a.regionIFoot(fi, li, fpI, map[string]bool{}) {
			r.fitI, r.linesI = fpI.fits(), fpI.lines()
		}
	}
	if a.hotDOK {
		fpD := newFootprint(a.dl1)
		if a.regionDFoot(fi, li, fpD, map[string]bool{}) {
			r.fitD, r.linesD = fpD.fits(), fpD.lines()
		}
	}
	a.fit[key] = r
	return r
}

// regionBlocks returns the sorted block IDs of region li of fi
// (li == -1: the whole function; otherwise the loop's blocks, nested
// loops included).
func regionBlocks(fi *fnInfo, li int) []int {
	var out []int
	if li < 0 {
		for b := range fi.g.Blocks {
			if fi.g.Reachable[b] {
				out = append(out, b)
			}
		}
	} else {
		for b := range fi.nest.loops[li].blocks {
			out = append(out, b)
		}
		sort.Ints(out)
	}
	return out
}

// regionIFoot accumulates the instruction-cache footprint of region li:
// the region's own code plus the whole code of every transitively
// called function. seenFn dedupes callees.
func (a *analyzer) regionIFoot(fi *fnInfo, li int, fp *footprint, seenFn map[string]bool) bool {
	blocks := regionBlocks(fi, li)
	if len(blocks) == 0 {
		return false
	}
	lo, hi := fi.g.Blocks[blocks[0]].Start, fi.g.Blocks[blocks[0]].End
	for _, b := range blocks {
		blk := fi.g.Blocks[b]
		if blk.Start < lo {
			lo = blk.Start
		}
		if blk.End > hi {
			hi = blk.End
		}
		if a.det() {
			fp.addRange(fi.base+mem.Addr(blk.Start)*isa.InstrBytes,
				fi.base+mem.Addr(blk.End)*isa.InstrBytes-1)
		}
	}
	if !a.det() {
		fp.addRelative(relLineSpan(int64(hi-lo)*int64(isa.InstrBytes), a.il1.LineSz))
	}
	for _, b := range blocks {
		blk := fi.g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			if c := fi.callee[i]; c != "" && !seenFn[c] {
				seenFn[c] = true
				if !a.calleeIFoot(c, fp, seenFn) {
					return false
				}
			}
		}
	}
	return true
}

func (a *analyzer) calleeIFoot(name string, fp *footprint, seenFn map[string]bool) bool {
	ci, ok := a.fns[name]
	if !ok {
		return false
	}
	size := int64(len(ci.fn.Code)) * int64(isa.InstrBytes)
	if a.det() {
		fp.addRange(ci.base, ci.base+mem.Addr(size)-1)
	} else {
		fp.addRelative(relLineSpan(size, a.il1.LineSz))
	}
	for i := range ci.fn.Code {
		if c := ci.callee[i]; c != "" && !seenFn[c] {
			seenFn[c] = true
			if !a.calleeIFoot(c, fp, seenFn) {
				return false
			}
		}
	}
	return true
}

// regionDFoot accumulates the data-cache footprint of region li. Every
// load and store in the region and its callees must be statically
// known; otherwise persistence is refused (an unknown store could age a
// footprint line out of the cache). Global objects are deduped by name
// (same lines wherever they land); stack frames are counted once per
// distinct static call chain, since each chain gives the frame a
// different (8-aligned) base.
func (a *analyzer) regionDFoot(fi *fnInfo, li int, fp *footprint, seenObj map[string]bool) bool {
	for _, b := range regionBlocks(fi, li) {
		blk := fi.g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			acc := fi.acc[i]
			if acc.load || acc.store {
				if !a.accFoot(acc, fp, seenObj) {
					return false
				}
			}
			if c := fi.callee[i]; c != "" {
				if !a.calleeDFoot(c, fp, seenObj) {
					return false
				}
			}
		}
	}
	return true
}

func (a *analyzer) calleeDFoot(name string, fp *footprint, seenObj map[string]bool) bool {
	ci, ok := a.fns[name]
	if !ok {
		return false
	}
	for i := range ci.fn.Code {
		acc := ci.acc[i]
		if acc.load || acc.store {
			if !a.accFoot(acc, fp, seenObj) {
				return false
			}
		}
		if c := ci.callee[i]; c != "" {
			// Deliberately no dedupe across call *sites*: each static
			// chain places the callee's frame at a different address.
			if !a.calleeDFoot(c, fp, seenObj) {
				return false
			}
		}
	}
	return true
}

// accFoot adds one known data access's object to the footprint.
func (a *analyzer) accFoot(acc dataAcc, fp *footprint, seenObj map[string]bool) bool {
	if !acc.valid {
		return false
	}
	switch {
	case acc.sym == "":
		if acc.lo < 0 {
			return false
		}
		fp.addRange(mem.Addr(acc.lo), mem.Addr(acc.hi+int64(acc.size)-1))
	case strings.HasPrefix(acc.sym, "\x00stack:"):
		owner := a.fns[strings.TrimPrefix(acc.sym, "\x00stack:")]
		if owner == nil {
			return false
		}
		frame := int64(owner.fn.FrameSize)
		if acc.lo < 0 || acc.hi+int64(acc.size) > frame {
			return false
		}
		// One contribution per call chain — callers dedupe globals but
		// pass every chain through here.
		fp.addRelative(relLineSpan(frame, a.dl1.LineSz))
	default:
		obj := a.p.DataObject(acc.sym)
		if obj == nil {
			return false
		}
		if acc.lo < 0 || acc.hi+int64(acc.size) > int64(obj.Size) {
			return false
		}
		if a.det() {
			base := a.layout[acc.sym]
			fp.addRange(base+mem.Addr(acc.lo), base+mem.Addr(acc.hi)+mem.Addr(acc.size)-1)
		} else if !seenObj[acc.sym] {
			seenObj[acc.sym] = true
			fp.addRelative(relLineSpan(int64(obj.Size), a.dl1.LineSz))
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Region DAG and longest path.

// costKey memoises per-function costs under a hotness context.
type costKey struct {
	fn         string
	hotI, hotD bool
}

type costRes struct {
	cyc mem.Cycles
	ok  bool
}

// costFn bounds one complete execution of the named function under the
// given hotness context.
func (a *analyzer) costFn(name string, hotI, hotD bool) (mem.Cycles, bool) {
	key := costKey{name, hotI, hotD}
	if r, ok := a.memo[key]; ok {
		return r.cyc, r.ok
	}
	fi, ok := a.fns[name]
	if !ok {
		a.diag(analysis.Error, name, 0, "call to unknown function %q", name)
		return 0, false
	}
	if a.onPath[name] {
		a.diag(analysis.Error, name, 0, "recursion through %q — execution time is unbounded", name)
		a.memo[key] = costRes{}
		return 0, false
	}
	a.onPath[name] = true
	cyc, resOK := a.regionLongest(fi, -1, hotI, hotD)
	delete(a.onPath, name)
	a.memo[key] = costRes{cyc, resOK}
	return cyc, resOK
}

// liftNode maps block b to its node in region li's DAG: the block
// itself when it belongs directly to the region, else the child loop
// (direct child of li) containing it. ok=false if b is outside li.
func liftNode(fi *fnInfo, li, b int) (isLoop bool, id int, ok bool) {
	cur := fi.nest.innermost[b]
	if cur == li {
		return false, b, true
	}
	for cur >= 0 && fi.nest.loops[cur].parent != li {
		cur = fi.nest.loops[cur].parent
	}
	if cur < 0 {
		return false, 0, false
	}
	return true, cur, true
}

// regionLongest bounds the longest acyclic path through region li
// (li == -1: the function body) with child loops collapsed to single
// nodes costed as bound × body + persistence charge.
func (a *analyzer) regionLongest(fi *fnInfo, li int, hotI, hotD bool) (mem.Cycles, bool) {
	nb := len(fi.g.Blocks)
	nodeOf := func(isLoop bool, id int) int {
		if isLoop {
			return nb + id
		}
		return id
	}

	// Collect nodes and edges.
	nodes := map[int]bool{}
	succs := map[int]map[int]bool{}
	var header int
	if li >= 0 {
		header = fi.nest.loops[li].header
	}
	for _, b := range regionBlocks(fi, li) {
		if li < 0 && !fi.g.Reachable[b] {
			continue
		}
		l1, id1, ok := liftNode(fi, li, b)
		if !ok {
			continue
		}
		n1 := nodeOf(l1, id1)
		nodes[n1] = true
		for _, s := range fi.g.Blocks[b].Succs {
			if li >= 0 {
				if !fi.nest.loops[li].blocks[s] {
					continue // exit edge; the parent region's concern
				}
				if s == header {
					continue // back edge
				}
			}
			l2, id2, ok := liftNode(fi, li, s)
			if !ok {
				continue
			}
			n2 := nodeOf(l2, id2)
			if n1 == n2 {
				continue
			}
			if l2 && s != fi.nest.loops[id2].header {
				a.diag(analysis.Error, fi.fn.Name, fi.g.Blocks[b].End-1,
					"irreducible control flow: edge into the middle of a loop")
				return 0, false
			}
			nodes[n2] = true
			if succs[n1] == nil {
				succs[n1] = map[int]bool{}
			}
			succs[n1][n2] = true
		}
	}

	entryBlock := 0
	if li >= 0 {
		entryBlock = header
	}
	el, eid, ok := liftNode(fi, li, entryBlock)
	if !ok || el {
		a.diag(analysis.Error, fi.fn.Name, fi.g.Blocks[entryBlock].Start,
			"irreducible control flow: region entry is inside a nested loop")
		return 0, false
	}
	entry := nodeOf(false, eid)
	if !nodes[entry] {
		nodes[entry] = true
	}

	// Restrict to nodes reachable from the entry.
	reach := map[int]bool{entry: true}
	stack := []int{entry}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range succs[n] {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}

	// Kahn topological order over the reachable subgraph.
	indeg := map[int]int{}
	for n := range reach {
		indeg[n] += 0
	}
	for n := range reach {
		for s := range succs[n] {
			if reach[s] {
				indeg[s]++
			}
		}
	}
	var order, queue []int
	for n := range indeg {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sort.Ints(queue) // determinism
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		var next []int
		for s := range succs[n] {
			if !reach[s] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Ints(next)
		queue = append(queue, next...)
	}
	if len(order) != len(reach) {
		a.diag(analysis.Error, fi.fn.Name, fi.g.Blocks[entryBlock].Start,
			"irreducible control flow: cycle not reducible to natural loops")
		return 0, false
	}

	// Longest path, nodes costed as blocks or collapsed loops.
	nodeCost := func(n int) (mem.Cycles, bool) {
		if n < nb {
			return a.blockCost(fi, n, hotI, hotD)
		}
		return a.loopNodeCost(fi, n-nb, hotI, hotD)
	}
	dist := map[int]mem.Cycles{}
	var longest mem.Cycles
	for _, n := range order {
		c, ok := nodeCost(n)
		if !ok {
			return 0, false
		}
		best := mem.Cycles(0)
		// max over predecessors; entry has none that matter.
		for p := range reach {
			if succs[p][n] && dist[p] > best {
				best = dist[p]
			}
		}
		d := a.satAdd(best, c)
		dist[n] = d
		if d > longest {
			longest = d
		}
	}
	return longest, true
}

// loopNodeCost collapses loop li: persistence charge (when the loop
// newly fits a cache under this context) plus bound × body longest
// path under the upgraded hotness context. Both the persistent and the
// non-persistent collapse are sound upper bounds, so the smaller wins —
// for a loop streaming over a large-but-fitting footprint, paying the
// whole footprint's one-time miss charge per region entry can exceed
// the per-iteration distinct-line charge, and taking the min keeps the
// mode ordering (det ≤ dsr-eager ≤ dsr-lazy) monotone: extra hotness
// can now only ever lower a bound.
func (a *analyzer) loopNodeCost(fi *fnInfo, li int, hotI, hotD bool) (mem.Cycles, bool) {
	l := fi.nest.loops[li]
	if l.bound < 1 {
		// Already reported by resolveBounds; refuse quietly.
		return 0, false
	}
	var charge mem.Cycles
	nhI, nhD := hotI, hotD
	if !hotI || !hotD {
		fr := a.regionFit(fi, li)
		if !hotI && fr.fitI {
			charge = a.satAdd(charge, a.satMul(fr.linesI, a.lat.il1MissX))
			nhI = true
		}
		if !hotD && fr.fitD {
			charge = a.satAdd(charge, a.satMul(fr.linesD, a.lat.dl1MissX))
			nhD = true
		}
	}
	body, ok := a.regionLongest(fi, li, nhI, nhD)
	if !ok {
		return 0, false
	}
	cost := a.satAdd(charge, a.satMul(l.bound, body))
	if nhI != hotI || nhD != hotD {
		// Alternative: refuse the persistence upgrade entirely.
		cold, ok := a.regionLongest(fi, li, hotI, hotD)
		if !ok {
			return 0, false
		}
		if alt := a.satMul(l.bound, cold); alt < cost {
			cost = alt
		}
	}
	return cost, true
}

// distinctFetchLines bounds the IL1 lines one execution of blk touches.
func (a *analyzer) distinctFetchLines(fi *fnInfo, start, end int) int {
	n := end - start
	if n <= 0 {
		return 0
	}
	if a.det() {
		first := a.il1.LineOf(fi.base + mem.Addr(start)*isa.InstrBytes)
		last := a.il1.LineOf(fi.base + mem.Addr(end)*isa.InstrBytes - 1)
		return int(last-first) + 1
	}
	k := relLineSpan(int64(n)*int64(isa.InstrBytes), a.il1.LineSz)
	if k > n {
		k = n
	}
	return k
}

// blockCost bounds one execution of block b under the hotness context.
func (a *analyzer) blockCost(fi *fnInfo, b int, hotI, hotD bool) (mem.Cycles, bool) {
	blk := fi.g.Blocks[b]
	n := blk.End - blk.Start
	cost := a.satMul(n, a.lat.fetchBase)

	// Fetch misses: hot region → charged once at region entry;
	// must-classified → count the unproven fetches; else distinct lines.
	fm := 0
	switch {
	case hotI:
	case a.useMustI && fi.cls != nil:
		for i := blk.Start; i < blk.End; i++ {
			if !fi.cls.FetchHit[i] {
				fm++
			}
		}
	default:
		fm = a.distinctFetchLines(fi, blk.Start, blk.End)
	}
	cost = a.satAdd(cost, a.satMul(fm, a.lat.il1MissX))

	for i := blk.Start; i < blk.End; i++ {
		in := &fi.fn.Code[i]
		cost = a.satAdd(cost, a.tm.WorstOpLatency(in.Op))
		switch in.Op {
		case isa.Ld, isa.Ldub, isa.FLd:
			cost = a.satAdd(cost, a.lat.loadBase)
			miss := true
			if hotD || (a.useMustD && fi.cls != nil && fi.cls.LoadHit[i]) {
				miss = false
			}
			if miss {
				cost = a.satAdd(cost, a.lat.dl1MissX)
			}
		case isa.St, isa.Stb, isa.FSt:
			cost = a.satAdd(cost, a.lat.storeX)
		case isa.Save, isa.SaveX:
			if !a.windowSafe {
				cost = a.satAdd(cost, a.lat.spillX)
			}
		case isa.Restore, isa.Ret:
			if !a.windowSafe {
				cost = a.satAdd(cost, a.lat.fillX)
			}
		case isa.Call, isa.CallR:
			callee := fi.callee[i]
			if callee == "" {
				a.diag(analysis.Error, fi.fn.Name, i,
					"indirect call with no statically known callee — bound impossible")
				return 0, false
			}
			c, ok := a.costFn(callee, hotI, hotD)
			if !ok {
				return 0, false
			}
			cost = a.satAdd(cost, c)
		}
	}
	return cost, true
}
