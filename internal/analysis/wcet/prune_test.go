package wcet

import (
	"strings"
	"testing"

	"dsr/internal/analysis"
	"dsr/internal/isa"
	"dsr/internal/prog"
)

// TestUnreachableFunctionPruned: a function never called from the
// entry must not influence the bound — even when it is unanalysable
// (here: an unbounded loop). The pruning is reported as an Info
// diagnostic and keeps the dead function out of every report table.
func TestUnreachableFunctionPruned(t *testing.T) {
	dead := prog.NewFunc("dead", prog.MinFrame).
		Prologue().
		Label("spin").
		AddI(isa.L0, isa.L0, 1).
		Ba("spin"). // no exit: would be rejected if analysed
		Halt().
		MustBuild()
	p := mustProgram(t, "pruned", countedLoop(10), dead)

	r := Analyze(p, Config{})
	if !r.Bounded {
		t.Fatalf("dead code made the program unbounded:\n%s", diagText(r))
	}

	// The bound equals the bound of the live part alone.
	alone := Analyze(mustProgram(t, "alone", countedLoop(10)), Config{})
	if !alone.Bounded || r.BoundCycles != alone.BoundCycles {
		t.Fatalf("bound with dead fn %d != bound without %d", r.BoundCycles, alone.BoundCycles)
	}

	if _, ok := r.FuncCycles["dead"]; ok {
		t.Error("pruned function appears in FuncCycles")
	}
	for _, l := range r.Loops {
		if l.Fn == "dead" {
			t.Errorf("pruned function contributes loop entry %+v", l)
		}
	}
	found := false
	for _, d := range r.Diags {
		if d.Sev == analysis.Info && strings.Contains(d.Msg, "unreachable") && strings.Contains(d.Msg, "dead") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Info diagnostic names the pruned function:\n%s", diagText(r))
	}

	// Soundness is unaffected: the simulator never reaches dead either.
	if sim := simulate(t, p); r.BoundCycles < sim {
		t.Fatalf("bound %d < simulated %d", r.BoundCycles, sim)
	}
}

// TestMutualRecursionRejected mirrors the stack analysis edge case at
// the WCET level: cycles through more than one function must be
// refused with a diagnostic, not unrolled or bounded.
func TestMutualRecursionRejected(t *testing.T) {
	ping := prog.NewFunc("ping", prog.MinFrame).Prologue().Call("pong").Epilogue().MustBuild()
	pong := prog.NewFunc("pong", prog.MinFrame).Prologue().Call("ping").Epilogue().MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).Prologue().Call("ping").Halt().MustBuild()
	p := mustProgram(t, "mutual", main, ping, pong)

	r := Analyze(p, Config{})
	if r.Bounded {
		t.Fatal("mutually recursive program accepted")
	}
	if !r.HasErrors() || !strings.Contains(diagText(r), "recursion") {
		t.Fatalf("want a recursion Error diagnostic, got:\n%s", diagText(r))
	}
}
