package analysis

import (
	"fmt"

	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// TransformInfo describes the shape of a DSR transformation: the names
// of the metadata tables and the function-index order the runtime will
// write them in. It mirrors core.Metadata without importing
// internal/core, so the verifier can be used from core's own tests.
type TransformInfo struct {
	// FTableSym / OffsetsSym are the metadata table symbols
	// (core.FTableSym / core.OffsetsSym).
	FTableSym  string
	OffsetsSym string
	// Funcs lists function names in table-index order.
	Funcs []string
	// MaxOverheadFrac, when positive, bounds the static instruction
	// overhead of the transformation (extra/original); the paper
	// reports <2% for the case study, so 0.02 is the natural budget
	// for production-sized programs. Zero disables the check.
	MaxOverheadFrac float64
}

// DispatchReg / OffsetReg are the scratch registers the DSR pass
// reserves for its call-dispatch and stack-offset sequences.
const (
	DispatchReg = isa.G6
	OffsetReg   = isa.G7
)

// VerifyTransform is the differential DSR verifier: given the original
// program and the output of core.Transform, it machine-checks every
// invariant the MBPTA argument rests on:
//
//  1. every direct call of the original is rewritten to the canonical
//     table-indirect dispatch (set ftable, %g6; ld [%g6+4k], %g6;
//     callr %g6) with k the callee's table index — and no direct call
//     survives anywhere;
//  2. every non-leaf prologue carries the paired offset load + SAVEX
//     (set offsets, %g7; ld [%g7+4self], %g7; savex frame, %g7) with
//     the frame immediate preserved — so the stack pointer stays valid
//     and double-word aligned through every random offset;
//  3. the __dsr_ftable/__dsr_offsets data objects exist, are complete
//     (≥ one word per function) and word-index consistent with the
//     metadata order in info.Funcs;
//  4. all other instructions are preserved verbatim and every branch
//     lands on the instruction that replaces its original target
//     (displacement remap correctness);
//  5. %g6/%g7 appear only inside the sanctioned sequences; and
//  6. the static instruction overhead stays within MaxOverheadFrac.
//
// A clean transformation returns no diagnostics; any Error-level
// diagnostic means the output must not be used for measurement.
// The verifier never panics on malformed input — it is fuzzed with
// mutated programs.
func VerifyTransform(orig, xform *prog.Program, info TransformInfo) []Diagnostic {
	v := &verifier{info: info}
	if orig == nil || xform == nil {
		v.errf("", -1, "nil program")
		return v.diags
	}
	idx := map[string]int{}
	for i, name := range info.Funcs {
		idx[name] = i
	}
	v.idx = idx

	// Function sets must correspond 1:1, same order, same shape.
	if len(orig.Functions) != len(xform.Functions) {
		v.errf("", -1, "function count changed: %d → %d", len(orig.Functions), len(xform.Functions))
	}
	for _, f := range orig.Functions {
		if _, ok := idx[f.Name]; !ok {
			v.errf(f.Name, -1, "function missing from metadata index")
		}
	}

	v.checkTables(orig, xform)

	var origInstrs, xformInstrs int
	for _, of := range orig.Functions {
		origInstrs += len(of.Code)
		tf := xform.Function(of.Name)
		if tf == nil {
			v.errf(of.Name, -1, "function dropped by the transformation")
			continue
		}
		if tf.Leaf != of.Leaf || tf.FrameSize != of.FrameSize {
			v.errf(of.Name, -1, "function shape changed (leaf %v→%v, frame %d→%d)",
				of.Leaf, tf.Leaf, of.FrameSize, tf.FrameSize)
			continue
		}
		v.checkFunction(of, tf)
	}
	for _, tf := range xform.Functions {
		xformInstrs += len(tf.Code)
		if orig.Function(tf.Name) == nil {
			v.errf(tf.Name, -1, "function invented by the transformation")
		}
	}

	// Global reserved-register sweep: nothing outside the sanctioned
	// shapes may touch %g6/%g7 (the lockstep walk catches in-sequence
	// deviations; this catches stray uses in invented code paths).
	for _, tf := range xform.Functions {
		for i := range tf.Code {
			if r, hit := touchesReserved(&tf.Code[i]); hit && !isDSRShape(tf, i) {
				v.errf(tf.Name, i, "%s used outside a DSR dispatch sequence: %q", r, tf.Code[i].String())
			}
		}
	}

	if info.MaxOverheadFrac > 0 && origInstrs > 0 {
		frac := float64(xformInstrs-origInstrs) / float64(origInstrs)
		if frac > info.MaxOverheadFrac {
			v.errf("", -1, "static instruction overhead %.2f%% exceeds the %.2f%% budget (%d → %d instructions)",
				frac*100, info.MaxOverheadFrac*100, origInstrs, xformInstrs)
		}
	}
	return v.diags
}

type verifier struct {
	info  TransformInfo
	idx   map[string]int
	diags []Diagnostic
}

func (v *verifier) errf(fn string, i int, format string, args ...interface{}) {
	v.diags = append(v.diags, Diagnostic{
		Pass: PassVerifyDSR, Sev: Error, Fn: fn, Index: i,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (v *verifier) checkTables(orig, xform *prog.Program) {
	want := mem.Addr(4 * len(v.info.Funcs))
	if want == 0 {
		want = 4
	}
	for _, sym := range []string{v.info.FTableSym, v.info.OffsetsSym} {
		if orig.DataObject(sym) != nil {
			v.errf(sym, -1, "metadata table already present in the input program")
		}
		d := xform.DataObject(sym)
		if d == nil {
			v.errf(sym, -1, "metadata table missing from the transformed program")
			continue
		}
		if d.Size < want {
			v.errf(sym, -1, "metadata table truncated: %d bytes for %d functions (want ≥ %d)",
				d.Size, len(v.info.Funcs), want)
		}
		if d.Align != 0 && d.Align%mem.WordSize != 0 {
			v.errf(sym, -1, "metadata table alignment %d not word-aligned", d.Align)
		}
	}
}

// checkFunction walks orig and xform code in lockstep, requiring each
// original instruction to map to either itself or its canonical
// expansion, then re-checks every branch displacement against the
// computed position map.
func (v *verifier) checkFunction(of, tf *prog.Function) {
	selfIdx, selfKnown := v.idx[of.Name]
	newPos := make([]int, len(of.Code)+1)
	j := 0 // cursor into tf.Code

	at := func(k int) *isa.Instr {
		if k < 0 || k >= len(tf.Code) {
			return nil
		}
		return &tf.Code[k]
	}

	bad := false
	for i := range of.Code {
		in := &of.Code[i]
		newPos[i] = j
		switch {
		case i == 0 && in.Op == isa.Save && !of.Leaf:
			// Expect: set offsets, %g7 ; ld [%g7+4*self], %g7 ; savex imm, %g7.
			set, ld, sx := at(j), at(j+1), at(j+2)
			switch {
			case set == nil || set.Op != isa.Set || set.Rd != OffsetReg || set.Sym != v.info.OffsetsSym:
				v.errf(tf.Name, j, "prologue does not load the stack-offset table (want set %s, %s)",
					v.info.OffsetsSym, OffsetReg)
				bad = true
			case ld == nil || ld.Op != isa.Ld || ld.Rd != OffsetReg || ld.Rs1 != OffsetReg:
				v.errf(tf.Name, j+1, "prologue offset load malformed (want ld [%s+4i], %s)", OffsetReg, OffsetReg)
				bad = true
			case selfKnown && ld.Imm != int32(selfIdx)*4:
				v.errf(tf.Name, j+1, "prologue loads offset word %d but %s has table index %d",
					ld.Imm/4, tf.Name, selfIdx)
				bad = true
			case sx == nil || sx.Op != isa.SaveX || sx.Rs2 != OffsetReg:
				v.errf(tf.Name, j+2, "prologue save not paired with its offset (want savex %d, %s)",
					in.Imm, OffsetReg)
				bad = true
			case sx.Imm != in.Imm:
				v.errf(tf.Name, j+2, "savex frame immediate %d differs from the original save %d", sx.Imm, in.Imm)
				bad = true
			}
			j += 3
		case in.Op == isa.Call:
			callee, ok := v.idx[in.Sym]
			set, ld, cr := at(j), at(j+1), at(j+2)
			switch {
			case set == nil || set.Op != isa.Set || set.Rd != DispatchReg || set.Sym != v.info.FTableSym:
				v.errf(tf.Name, j, "call to %q not rewritten to table-indirect dispatch (want set %s, %s)",
					in.Sym, v.info.FTableSym, DispatchReg)
				bad = true
			case ld == nil || ld.Op != isa.Ld || ld.Rd != DispatchReg || ld.Rs1 != DispatchReg:
				v.errf(tf.Name, j+1, "dispatch table load malformed for call to %q", in.Sym)
				bad = true
			case ok && ld.Imm != int32(callee)*4:
				v.errf(tf.Name, j+1, "dispatch loads table word %d but callee %q has index %d — the call would land in the wrong function",
					ld.Imm/4, in.Sym, callee)
				bad = true
			case !ok:
				v.errf(tf.Name, j+1, "callee %q absent from the metadata index", in.Sym)
				bad = true
			case cr == nil || cr.Op != isa.CallR || cr.Rs1 != DispatchReg:
				v.errf(tf.Name, j+2, "dispatch sequence for %q does not end in callr %s", in.Sym, DispatchReg)
				bad = true
			}
			j += 3
		default:
			got := at(j)
			if got == nil {
				v.errf(tf.Name, j, "transformed code ends early: original instruction %d (%q) has no counterpart",
					i, in.String())
				bad = true
			} else if !sameInstrModuloDisp(in, got) {
				v.errf(tf.Name, j, "instruction altered: %q became %q", in.String(), got.String())
				bad = true
			}
			j++
		}
	}
	newPos[len(of.Code)] = j
	if j < len(tf.Code) {
		v.errf(tf.Name, j, "transformation appended %d unexpected instruction(s)", len(tf.Code)-j)
		bad = true
	}
	if bad {
		return // position map unreliable; skip the displacement check
	}

	// Displacement remap: every original branch must land on the start
	// of the sequence replacing its original target.
	for i := range of.Code {
		if !of.Code[i].Op.IsBranch() {
			continue
		}
		tgt := i + int(of.Code[i].Disp)
		if tgt < 0 || tgt >= len(of.Code) {
			continue // invalid in the original; prog.Validate reports it
		}
		pos := newPos[i]
		got := at(pos)
		if got == nil {
			continue
		}
		if want := int32(newPos[tgt] - pos); got.Disp != want {
			v.errf(tf.Name, pos, "branch displacement remapped to %+d, want %+d (original target %d)",
				got.Disp, want, tgt)
		}
	}
}

// sameInstrModuloDisp compares two instructions ignoring the branch
// displacement (remapped by the pass and checked separately).
func sameInstrModuloDisp(a, b *isa.Instr) bool {
	if a.Op.IsBranch() && b.Op == a.Op {
		ac, bc := *a, *b
		ac.Disp, bc.Disp = 0, 0
		return ac == bc
	}
	return *a == *b
}
