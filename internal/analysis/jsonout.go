package analysis

import (
	"encoding/json"
)

// DiagJSON is the stable machine-readable form of one Diagnostic. The
// field set and names are a compatibility contract for tools consuming
// `dsrlint -json` (golden-tested); extend it, never rename.
type DiagJSON struct {
	Pass     string `json:"pass"`
	Severity string `json:"severity"`
	Fn       string `json:"fn,omitempty"`
	Index    int    `json:"index"` // -1 when not tied to an instruction
	Line     int    `json:"line,omitempty"`
	Msg      string `json:"msg"`
}

// ReportJSON is the top-level document emitted by `dsrlint -json`.
type ReportJSON struct {
	Program  string     `json:"program"`
	Errors   int        `json:"errors"`
	Warnings int        `json:"warnings"`
	Infos    int        `json:"infos"`
	Diags    []DiagJSON `json:"diags"`
	// WCET carries the static WCET report when the analysis ran
	// (dsrlint -wcet); it is the wcet.Report marshalled as-is.
	WCET json.RawMessage `json:"wcet,omitempty"`
	// Leak carries the static side-channel leakage report when the
	// analysis ran (dsrlint -leak); it is the leak.Report as-is.
	Leak json.RawMessage `json:"leak,omitempty"`
}

// NewReportJSON converts diagnostics into the stable JSON document,
// preserving their order.
func NewReportJSON(program string, diags []Diagnostic) *ReportJSON {
	r := &ReportJSON{Program: program, Diags: make([]DiagJSON, 0, len(diags))}
	for _, d := range diags {
		switch d.Sev {
		case Error:
			r.Errors++
		case Warning:
			r.Warnings++
		default:
			r.Infos++
		}
		r.Diags = append(r.Diags, DiagJSON{
			Pass: d.Pass, Severity: d.Sev.String(),
			Fn: d.Fn, Index: d.Index, Line: d.Line, Msg: d.Msg,
		})
	}
	return r
}

// Marshal renders the document with stable two-space indentation.
func (r *ReportJSON) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
