package analysis_test

// Soundness of the static stack analysis against the simulator: for the
// space case study's control task, the statically computed stack-byte,
// window-depth and window-spill bounds must dominate everything the
// simulator actually observes. A static bound below an observed value
// would mean a partition stack budget derived from it can overflow in
// flight — exactly the class of failure the paper's V&V process exists
// to exclude.

import (
	"testing"

	"dsr/internal/analysis"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/spaceapp"
)

func TestStaticStackBoundCoversSimulatedControlTask(t *testing.T) {
	p, err := spaceapp.BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	cfg := platform.ProximaLEON3()
	sb, err := analysis.AnalyzeStack(p, analysis.StackOptions{
		NumWindows: cfg.CPU.NumWindows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sb.Unresolved != 0 {
		t.Fatalf("%d unresolved indirect calls in the untransformed control task", sb.Unresolved)
	}

	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(cfg)
	plat.LoadImage(img)

	for seed := uint64(1); seed <= 3; seed++ {
		if err := spaceapp.ApplyControlInput(plat.Mem, img, spaceapp.GenControlInput(seed)); err != nil {
			t.Fatal(err)
		}
		// Step the CPU manually, watching the stack pointer and the net
		// save/restore depth before each instruction.
		plat.FlushCaches()
		plat.ResetCounters()
		plat.CPU.Reset(cfg.StackTop)
		minSP := cfg.StackTop
		depth, maxDepth := 0, 0
		for steps := 0; !plat.CPU.Halted(); steps++ {
			if steps > 50_000_000 {
				t.Fatal("control task did not halt")
			}
			if in := img.InstrAt(plat.CPU.PC()); in != nil {
				switch in.Op {
				case isa.Save, isa.SaveX:
					if depth++; depth > maxDepth {
						maxDepth = depth
					}
				case isa.Restore, isa.Ret:
					depth--
				}
			}
			if err := plat.CPU.Step(); err != nil {
				t.Fatal(err)
			}
			if sp := plat.CPU.Reg(isa.SP); sp < minSP {
				minSP = sp
			}
		}

		observedBytes := mem.Addr(cfg.StackTop - minSP)
		if sb.MaxStackBytes < observedBytes {
			t.Errorf("seed %d: static stack bound %d < observed excursion %d",
				seed, sb.MaxStackBytes, observedBytes)
		}
		if sb.MaxWindowDepth < maxDepth {
			t.Errorf("seed %d: static window depth %d < observed %d",
				seed, sb.MaxWindowDepth, maxDepth)
		}
		observedSpill := maxDepth - (cfg.CPU.NumWindows - 1)
		if observedSpill < 0 {
			observedSpill = 0
		}
		if sb.WindowSpillBound < observedSpill {
			t.Errorf("seed %d: static spill bound %d < observed %d",
				seed, sb.WindowSpillBound, observedSpill)
		}

		// The bound must also be non-vacuous: a sound but absurdly loose
		// bound (say 10× the observation) would make partition budgets
		// useless. The control task has no data-dependent call depth, so
		// the static chain should be exercised exactly.
		if sb.MaxWindowDepth != maxDepth {
			t.Errorf("seed %d: static window depth %d does not match the exercised depth %d",
				seed, sb.MaxWindowDepth, maxDepth)
		}
		if observedBytes == 0 {
			t.Error("simulator observed no stack use — instrumentation broken")
		}
		t.Logf("seed %d: stack %d/%d bytes, windows %d/%d, spill ≤ %d (chain %v)",
			seed, observedBytes, sb.MaxStackBytes, maxDepth, sb.MaxWindowDepth,
			sb.WindowSpillBound, sb.WorstChain)
	}
}
