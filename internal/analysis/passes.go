package analysis

import (
	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// Pass names, exported so tools can filter diagnostics.
const (
	PassReservedReg = "reserved-reg"
	PassRetShape    = "ret-shape"
	PassAlignment   = "alignment"
	PassFrame       = "frame"
	PassSymbols     = "symbols"
	PassUnreachable = "unreachable"
	PassDeadStore   = "dead-store"
	PassL2Layout    = "l2-layout"
	PassVerifyDSR   = "dsr-verify"
)

// reads/writes of %g6/%g7 by an instruction.
func touchesReserved(in *isa.Instr) (isa.Reg, bool) {
	check := func(r isa.Reg) bool { return r == isa.G6 || r == isa.G7 }
	e := effect(in)
	for _, d := range e.defs {
		if check(isa.Reg(d)) {
			return isa.Reg(d), true
		}
	}
	for _, u := range e.uses {
		if u < numIntRegs && check(isa.Reg(u)) {
			return isa.Reg(u), true
		}
	}
	// Barrier instructions "use all" in the liveness model; for the
	// reserved-register lint only explicit operands count.
	if e.usesAll {
		switch in.Op {
		case isa.CallR:
			if check(in.Rs1) {
				return in.Rs1, true
			}
		case isa.SaveX:
			if check(in.Rs2) {
				return in.Rs2, true
			}
		}
	}
	return 0, false
}

// isDSRShape reports whether the instruction at index i of f is part of
// one of the two canonical sequences the DSR pass emits, which are the
// only sanctioned uses of %g6/%g7.
func isDSRShape(f *prog.Function, i int) bool {
	at := func(j int) *isa.Instr {
		if j < 0 || j >= len(f.Code) {
			return nil
		}
		return &f.Code[j]
	}
	in := at(i)
	switch in.Op {
	case isa.Set:
		// set <table>, %g6/%g7 followed by the table load.
		next := at(i + 1)
		return (in.Rd == isa.G6 || in.Rd == isa.G7) && in.Sym != "" &&
			next != nil && next.Op == isa.Ld && next.Rd == in.Rd && next.Rs1 == in.Rd
	case isa.Ld:
		prev := at(i - 1)
		if prev == nil || prev.Op != isa.Set || prev.Rd != in.Rd || in.Rs1 != in.Rd {
			return false
		}
		next := at(i + 1)
		if next == nil {
			return false
		}
		return (next.Op == isa.CallR && next.Rs1 == in.Rd) ||
			(next.Op == isa.SaveX && next.Rs2 == in.Rd)
	case isa.CallR:
		prev := at(i - 1)
		return prev != nil && prev.Op == isa.Ld && prev.Rd == in.Rs1
	case isa.SaveX:
		prev := at(i - 1)
		return prev != nil && prev.Op == isa.Ld && prev.Rd == in.Rs2
	}
	return false
}

// ReservedRegPass flags application code touching %g6/%g7, the scratch
// registers the DSR dispatch sequences clobber at every rewritten call
// and prologue (SPARC reserves them for the system). Recognised DSR
// dispatch shapes are exempt, so the pass is clean on transformed
// output too.
func ReservedRegPass() *Pass {
	return &Pass{
		Name: PassReservedReg,
		Doc:  "flags %g6/%g7 uses outside the DSR dispatch sequences",
		Run: func(ctx *Context) {
			for _, f := range ctx.Prog.Functions {
				for i := range f.Code {
					r, hit := touchesReserved(&f.Code[i])
					if !hit || isDSRShape(f, i) {
						continue
					}
					ctx.Diagf(Error, f.Name, i,
						"%s is reserved for the DSR dispatch (clobbered at every rewritten call); found %q",
						r, f.Code[i].String())
				}
			}
		},
	}
}

// RetShapePass checks the control-transfer conventions the simulator's
// ABI (and the DSR pass) rely on: a single prologue SAVE as the first
// instruction of each non-leaf, matching return forms, and no path
// that falls off the end of the function.
func RetShapePass() *Pass {
	return &Pass{
		Name: PassRetShape,
		Doc:  "prologue/return shape and fall-through-end checks",
		Run: func(ctx *Context) {
			for _, f := range ctx.Prog.Functions {
				if len(f.Code) == 0 {
					ctx.Diagf(Error, f.Name, -1, "function is empty")
					continue
				}
				g := BuildCFG(f)
				for i := range f.Code {
					op := f.Code[i].Op
					switch op {
					case isa.Save, isa.SaveX:
						if f.Leaf {
							ctx.Diagf(Error, f.Name, i, "leaf function executes %s", op)
						} else if i != 0 {
							ctx.Diagf(Error, f.Name, i, "%s is not the first instruction; the DSR pass requires the prologue save at index 0", op)
						}
					case isa.Ret:
						if f.Leaf {
							ctx.Diagf(Error, f.Name, i, "leaf uses ret (want retl)")
						}
					case isa.RetL:
						if !f.Leaf {
							ctx.Diagf(Error, f.Name, i, "non-leaf uses retl (want ret)")
						}
					case isa.Call, isa.CallR:
						if f.Leaf {
							ctx.Diagf(Error, f.Name, i, "leaf function makes a call")
						}
					}
				}
				if !f.Leaf && f.Code[0].Op != isa.Save && f.Code[0].Op != isa.SaveX {
					ctx.Diagf(Error, f.Name, 0, "non-leaf function does not start with its prologue save")
				}
				// Every reachable block must either branch away or end in
				// a terminator; the last block must not fall through.
				for _, b := range g.Blocks {
					if !g.Reachable[b.ID] || b.End != len(f.Code) {
						continue
					}
					last := f.Code[b.End-1].Op
					if !isTerminator(last) && !last.IsBranch() {
						ctx.Diagf(Error, f.Name, b.End-1,
							"control falls off the end of the function after %q", f.Code[b.End-1].String())
					} else if last.IsBranch() && last != isa.Ba {
						ctx.Diagf(Error, f.Name, b.End-1,
							"conditional branch %q can fall off the end of the function", f.Code[b.End-1].String())
					}
				}
			}
		},
	}
}

// AlignmentPass flags memory operands that are misaligned by
// construction: word-sized accesses whose immediate offset is not
// word-aligned (every base pointer in this ABI — %sp, %fp, symbol
// addresses — is at least word-aligned) and save immediates that break
// the SPARC double-word stack rule.
func AlignmentPass() *Pass {
	return &Pass{
		Name: PassAlignment,
		Doc:  "misaligned memory operands and stack adjustments",
		Run: func(ctx *Context) {
			for _, f := range ctx.Prog.Functions {
				for i := range f.Code {
					in := &f.Code[i]
					switch in.Op {
					case isa.Ld, isa.St, isa.FLd, isa.FSt:
						if in.Imm%mem.WordSize != 0 {
							ctx.Diagf(Error, f.Name, i,
								"word access with offset %d not a multiple of %d: %q",
								in.Imm, mem.WordSize, in.String())
						}
					case isa.Save, isa.SaveX:
						if in.Imm%mem.DoubleWord != 0 {
							ctx.Diagf(Error, f.Name, i,
								"%s adjusts the stack by %d, not a multiple of %d (SPARC v8 requires a double-word aligned %%sp)",
								in.Op, in.Imm, mem.DoubleWord)
						}
					}
				}
			}
		},
	}
}

// FramePass checks the stack-frame conventions of prog's ABI: frame
// sizes legal, the prologue save reserving exactly FrameSize bytes, and
// %sp-relative accesses staying inside the frame — in particular out of
// the 64-byte register-window save area, which window overflow traps
// overwrite asynchronously.
func FramePass() *Pass {
	return &Pass{
		Name: PassFrame,
		Doc:  "frame-size conventions and %sp-relative access bounds",
		Run: func(ctx *Context) {
			for _, f := range ctx.Prog.Functions {
				if f.Leaf {
					if f.FrameSize != 0 {
						ctx.Diagf(Error, f.Name, -1, "leaf function declares a %d-byte frame", f.FrameSize)
					}
					continue
				}
				if f.FrameSize < prog.MinFrame {
					ctx.Diagf(Error, f.Name, -1,
						"frame %d below the %d-byte minimum (window save area + argument area)",
						f.FrameSize, prog.MinFrame)
				}
				if f.FrameSize%mem.DoubleWord != 0 {
					ctx.Diagf(Error, f.Name, -1, "frame %d not double-word aligned", f.FrameSize)
				}
				for i := range f.Code {
					in := &f.Code[i]
					switch in.Op {
					case isa.Save, isa.SaveX:
						if in.Imm != f.FrameSize {
							ctx.Diagf(Error, f.Name, i,
								"prologue reserves %d bytes but the declared frame is %d", in.Imm, f.FrameSize)
						}
					case isa.Ld, isa.St, isa.Ldub, isa.Stb, isa.FLd, isa.FSt:
						if in.Rs1 != isa.SP {
							continue
						}
						switch {
						case in.Imm < 0:
							ctx.Diagf(Error, f.Name, i,
								"%q accesses below %%sp (offset %d)", in.String(), in.Imm)
						case in.Imm < prog.SaveAreaBytes:
							ctx.Diagf(Error, f.Name, i,
								"%q touches the register-window save area [%%sp+0,%%sp+%d), which overflow traps overwrite",
								in.String(), prog.SaveAreaBytes)
						case in.Imm >= int32(f.FrameSize):
							ctx.Diagf(Warning, f.Name, i,
								"%q reaches offset %d, beyond the %d-byte frame", in.String(), in.Imm, f.FrameSize)
						}
					}
				}
			}
		},
	}
}

// SymbolsPass reports every unresolved Call/Set symbol and every
// out-of-function branch displacement, with positions. prog.Validate
// covers the same ground but stops at the first violation; the lint
// form reports them all, which is what an editor integration wants.
func SymbolsPass() *Pass {
	return &Pass{
		Name: PassSymbols,
		Doc:  "unresolved symbol references and out-of-range branches",
		Run: func(ctx *Context) {
			p := ctx.Prog
			for _, f := range p.Functions {
				for i := range f.Code {
					in := &f.Code[i]
					switch in.Op {
					case isa.Call:
						if p.Function(in.Sym) == nil {
							ctx.Diagf(Error, f.Name, i, "call to undefined function %q", in.Sym)
						}
					case isa.Set:
						if in.Sym != "" && !p.SymbolDefined(in.Sym) {
							ctx.Diagf(Error, f.Name, i, "reference to undefined symbol %q", in.Sym)
						}
					}
					if in.Op.IsBranch() {
						if tgt := i + int(in.Disp); tgt < 0 || tgt >= len(f.Code) {
							ctx.Diagf(Error, f.Name, i,
								"branch displacement %+d leaves the function [0,%d)", in.Disp, len(f.Code))
						}
					}
				}
			}
			if p.Entry != "" && p.Function(p.Entry) == nil {
				ctx.Diagf(Error, p.Entry, -1, "entry point %q is not a defined function", p.Entry)
			}
		},
	}
}

// UnreachablePass reports instructions no path from the function entry
// reaches. Dead code is a WCET-analysis smell: it inflates the static
// image (and the randomisation relocation cost) for no behaviour.
func UnreachablePass() *Pass {
	return &Pass{
		Name: PassUnreachable,
		Doc:  "instructions unreachable from the function entry",
		Run: func(ctx *Context) {
			for _, f := range ctx.Prog.Functions {
				if len(f.Code) == 0 {
					continue
				}
				g := BuildCFG(f)
				for _, i := range g.UnreachableInstrs() {
					ctx.Diagf(Warning, f.Name, i, "unreachable instruction %q", f.Code[i].String())
				}
			}
		},
	}
}

// DeadStorePass reports pure instructions whose results are never read.
func DeadStorePass() *Pass {
	return &Pass{
		Name: PassDeadStore,
		Doc:  "register writes never observed by any later instruction",
		Run: func(ctx *Context) {
			for _, f := range ctx.Prog.Functions {
				if len(f.Code) == 0 {
					continue
				}
				lv := ComputeLiveness(BuildCFG(f))
				for _, i := range lv.DeadStores() {
					ctx.Diagf(Warning, f.Name, i, "dead store: %q is never read", f.Code[i].String())
				}
			}
		},
	}
}
