// Package isa defines the SPARC v8-flavoured instruction set executed by
// the simulated LEON3 core. It is deliberately a subset — enough to write
// the case-study application and the DSR runtime support code — but it
// keeps the SPARC features that made the paper's port challenging:
// register windows with SAVE/RESTORE (and their overflow/underflow stack
// traffic), a stack pointer that must stay double-word aligned, separate
// integer and floating-point register files, and no hardware coherence
// between the instruction and data paths.
//
// Instructions are fixed four-byte entities. Branches are PC-relative
// (Disp, in instructions); calls and address materialisation reference
// symbols that a loader resolves, which is the hook both the
// deterministic toolchain and the DSR runtime use to (re)locate code and
// data.
package isa

import "fmt"

// InstrBytes is the architectural size of one instruction.
const InstrBytes = 4

// Reg names an integer register in the current window: globals %g0-%g7,
// outs %o0-%o7, locals %l0-%l7, ins %i0-%i7. %g0 is hardwired to zero;
// %o6 is the stack pointer, %i6 the frame pointer, %o7/%i7 hold return
// addresses.
type Reg uint8

// Integer register names.
const (
	G0 Reg = iota
	G1
	G2
	G3
	G4
	G5
	G6
	G7
	O0
	O1
	O2
	O3
	O4
	O5
	O6 // stack pointer
	O7 // call return address
	L0
	L1
	L2
	L3
	L4
	L5
	L6
	L7
	I0
	I1
	I2
	I3
	I4
	I5
	I6 // frame pointer
	I7 // callee view of return address
	NumRegs
)

// SP and FP are the conventional stack and frame pointer aliases.
const (
	SP = O6
	FP = I6
)

var regNames = [NumRegs]string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("%%r%d", uint8(r))
}

// FReg names a single-precision floating point register %f0-%f15.
type FReg uint8

// NumFRegs is the size of the FP register file.
const NumFRegs = 16

func (f FReg) String() string { return fmt.Sprintf("%%f%d", uint8(f)) }

// Op is an operation code.
type Op uint8

// Operation codes. Grouped by class; the CPU charges per-class latencies.
const (
	Nop Op = iota
	Halt

	// Integer ALU: Rd = Rs1 op Src2.
	Add
	Sub
	And
	Or
	Xor
	Sll
	Srl
	Sra
	Mul
	Div

	// Cmp sets the integer condition codes from Rs1 - Src2.
	Cmp

	// Set materialises a 32-bit immediate or a symbol address into Rd
	// (the SETHI+OR pair of real SPARC, counted as one instruction here).
	Set
	// Mov copies Src2 into Rd.
	Mov

	// Memory: address is Rs1 + Imm. Ld/St move words, Ldub/Stb bytes.
	Ld
	St
	Ldub
	Stb

	// Floating point (single precision).
	FLd  // FRd = mem[Rs1+Imm]
	FSt  // mem[Rs1+Imm] = FRs2
	Fadd // FRd = FRs1 + FRs2
	Fsub
	Fmul
	Fdiv
	Fsqrt // FRd = sqrt(FRs2)
	Fcmp  // sets FP condition codes from FRs1 ? FRs2
	Fitos // FRd = float(int word in FRs2)
	Fstoi // FRd = int(float in FRs2), truncated

	// Branches: PC-relative by Disp instructions. Integer condition.
	Ba
	Be
	Bne
	Bl
	Ble
	Bg
	Bge
	// FP condition branches.
	Fbe
	Fbne
	Fbl
	Fbg

	// Control transfer.
	Call  // direct call to Sym; writes return address to %o7
	CallR // indirect call through Rs1 (DSR dispatch); writes %o7
	// Ret returns from a windowed routine: PC = %i7 + 4 and the register
	// window is restored in the same step (the simulator has no delay
	// slots, so SPARC's `ret; restore` pair is one instruction here).
	Ret
	RetL  // leaf return: PC = %o7 + 4, no window activity
	Save  // rotate window down; new SP = old SP - Imm
	SaveX // rotate window down; new SP = old SP - Imm - Rs2 (DSR stack offset)
	// Restore pops the window without jumping (rarely needed alone).
	Restore

	// IPoint is the RVS instrumentation point: records (Imm, cycle
	// counter) into the out-of-band trace buffer (§V of the paper).
	IPoint

	NumOps
)

var opNames = [NumOps]string{
	"nop", "halt",
	"add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mul", "div",
	"cmp", "set", "mov",
	"ld", "st", "ldub", "stb",
	"fld", "fst", "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fcmp", "fitos", "fstoi",
	"ba", "be", "bne", "bl", "ble", "bg", "bge",
	"fbe", "fbne", "fbl", "fbg",
	"call", "callr", "ret", "retl", "save", "savex", "restore",
	"ipoint",
}

func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether o is a conditional or unconditional branch.
func (o Op) IsBranch() bool {
	return o >= Ba && o <= Fbg
}

// IsFPU reports whether o executes in the floating-point unit. This is
// the class counted by the FPU performance counter in Table I.
func (o Op) IsFPU() bool {
	return o >= Fadd && o <= Fstoi
}

// IsMemory reports whether o performs a data memory access.
func (o Op) IsMemory() bool {
	switch o {
	case Ld, St, Ldub, Stb, FLd, FSt:
		return true
	}
	return false
}

// IsStore reports whether o writes data memory.
func (o Op) IsStore() bool {
	switch o {
	case St, Stb, FSt:
		return true
	}
	return false
}

// Instr is one decoded instruction. The zero value is a Nop. A single
// struct covers all formats; unused fields are zero. UseImm selects the
// immediate as the second ALU source.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	FRd    FReg
	FRs1   FReg
	FRs2   FReg
	Imm    int32
	UseImm bool
	// Sym is the symbol referenced by Set/Call; resolved at load time.
	Sym string
	// Disp is the branch displacement in instructions (can be negative).
	Disp int32
}

// String disassembles the instruction.
func (in *Instr) String() string {
	src2 := func() string {
		if in.UseImm {
			return fmt.Sprintf("%d", in.Imm)
		}
		return in.Rs2.String()
	}
	switch in.Op {
	case Nop, Halt, Restore:
		return in.Op.String()
	case Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Div:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rs1, src2(), in.Rd)
	case Cmp:
		return fmt.Sprintf("cmp %s, %s", in.Rs1, src2())
	case Set:
		if in.Sym != "" {
			return fmt.Sprintf("set %s, %s", in.Sym, in.Rd)
		}
		return fmt.Sprintf("set %d, %s", in.Imm, in.Rd)
	case Mov:
		return fmt.Sprintf("mov %s, %s", src2(), in.Rd)
	case Ld, Ldub:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Rs1, in.Imm, in.Rd)
	case St, Stb:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case FLd:
		return fmt.Sprintf("fld [%s%+d], %s", in.Rs1, in.Imm, in.FRd)
	case FSt:
		return fmt.Sprintf("fst %s, [%s%+d]", in.FRs2, in.Rs1, in.Imm)
	case Fadd, Fsub, Fmul, Fdiv:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.FRs1, in.FRs2, in.FRd)
	case Fsqrt, Fitos, Fstoi:
		return fmt.Sprintf("%s %s, %s", in.Op, in.FRs2, in.FRd)
	case Fcmp:
		return fmt.Sprintf("fcmp %s, %s", in.FRs1, in.FRs2)
	case Ba, Be, Bne, Bl, Ble, Bg, Bge, Fbe, Fbne, Fbl, Fbg:
		return fmt.Sprintf("%s %+d", in.Op, in.Disp)
	case Call:
		return fmt.Sprintf("call %s", in.Sym)
	case CallR:
		return fmt.Sprintf("callr %s", in.Rs1)
	case Ret, RetL:
		return in.Op.String()
	case Save:
		return fmt.Sprintf("save %d", in.Imm)
	case SaveX:
		return fmt.Sprintf("savex %d, %s", in.Imm, in.Rs2)
	case IPoint:
		return fmt.Sprintf("ipoint %d", in.Imm)
	default:
		return in.Op.String()
	}
}
