package isa

import (
	"strings"
	"testing"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		G0: "%g0", G7: "%g7",
		O0: "%o0", O6: "%sp", O7: "%o7",
		L0: "%l0", L7: "%l7",
		I0: "%i0", I6: "%fp", I7: "%i7",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("Reg(%d).String()=%q, want %q", r, r.String(), want)
		}
	}
	if SP != O6 || FP != I6 {
		t.Error("SP/FP aliases wrong")
	}
	if Reg(200).String() != "%r200" {
		t.Error("out-of-range reg name")
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{Ba, Be, Bne, Bl, Ble, Bg, Bge, Fbe, Fbne, Fbl, Fbg}
	for _, o := range branches {
		if !o.IsBranch() {
			t.Errorf("%s should be a branch", o)
		}
	}
	nonBranches := []Op{Nop, Add, Call, CallR, Ret, Save, Ld, Fadd}
	for _, o := range nonBranches {
		if o.IsBranch() {
			t.Errorf("%s should not be a branch", o)
		}
	}
	fpu := []Op{Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fcmp, Fitos, Fstoi}
	for _, o := range fpu {
		if !o.IsFPU() {
			t.Errorf("%s should be FPU", o)
		}
	}
	// Loads/stores of FP values are memory ops, not FPU ops (they do not
	// use the arithmetic pipeline), matching the Table I counter split.
	if FLd.IsFPU() || FSt.IsFPU() {
		t.Error("FP loads/stores must not count as FPU ops")
	}
	mem := []Op{Ld, St, Ldub, Stb, FLd, FSt}
	for _, o := range mem {
		if !o.IsMemory() {
			t.Errorf("%s should be memory", o)
		}
	}
	stores := []Op{St, Stb, FSt}
	for _, o := range stores {
		if !o.IsStore() {
			t.Errorf("%s should be a store", o)
		}
	}
	if Ld.IsStore() || FLd.IsStore() {
		t.Error("loads must not be stores")
	}
}

func TestEveryOpHasName(t *testing.T) {
	for o := Op(0); o < NumOps; o++ {
		if o.String() == "" || strings.HasPrefix(o.String(), "op(") {
			t.Errorf("op %d has no name", o)
		}
	}
}

func TestZeroValueIsNop(t *testing.T) {
	var in Instr
	if in.Op != Nop {
		t.Error("zero Instr is not a nop")
	}
	if in.String() != "nop" {
		t.Errorf("zero Instr disassembles to %q", in.String())
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Add, Rd: O0, Rs1: O1, Rs2: O2}, "add %o1, %o2, %o0"},
		{Instr{Op: Add, Rd: O0, Rs1: O1, Imm: 4, UseImm: true}, "add %o1, 4, %o0"},
		{Instr{Op: Cmp, Rs1: L0, Imm: 10, UseImm: true}, "cmp %l0, 10"},
		{Instr{Op: Set, Rd: G1, Sym: "table"}, "set table, %g1"},
		{Instr{Op: Set, Rd: G1, Imm: 42}, "set 42, %g1"},
		{Instr{Op: Mov, Rd: O0, Imm: 7, UseImm: true}, "mov 7, %o0"},
		{Instr{Op: Ld, Rd: L1, Rs1: SP, Imm: 8}, "ld [%sp+8], %l1"},
		{Instr{Op: St, Rd: L1, Rs1: SP, Imm: -4}, "st %l1, [%sp-4]"},
		{Instr{Op: FLd, FRd: 2, Rs1: O0, Imm: 0}, "fld [%o0+0], %f2"},
		{Instr{Op: FSt, FRs2: 3, Rs1: O0, Imm: 4}, "fst %f3, [%o0+4]"},
		{Instr{Op: Fadd, FRd: 0, FRs1: 1, FRs2: 2}, "fadd %f1, %f2, %f0"},
		{Instr{Op: Fsqrt, FRd: 0, FRs2: 2}, "fsqrt %f2, %f0"},
		{Instr{Op: Fcmp, FRs1: 1, FRs2: 2}, "fcmp %f1, %f2"},
		{Instr{Op: Bne, Disp: -3}, "bne -3"},
		{Instr{Op: Ba, Disp: 2}, "ba +2"},
		{Instr{Op: Call, Sym: "process"}, "call process"},
		{Instr{Op: CallR, Rs1: G6}, "callr %g6"},
		{Instr{Op: Ret}, "ret"},
		{Instr{Op: RetL}, "retl"},
		{Instr{Op: Save, Imm: 96}, "save 96"},
		{Instr{Op: SaveX, Imm: 96, Rs2: G7}, "savex 96, %g7"},
		{Instr{Op: Restore}, "restore"},
		{Instr{Op: IPoint, Imm: 1}, "ipoint 1"},
		{Instr{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}
