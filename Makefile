# Convenience targets for the dsr reproduction.

GO ?= go

.PHONY: all build test vet lint race bench evaluate examples dsrlint fuzz clean

all: build lint test race dsrlint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (not a
# module dependency — install with: go install honnef.co/go/tools/cmd/staticcheck@latest).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet ran)"; \
	fi

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the repo's own lint/verification toolchain over the shipped
# programs; non-zero exit on any Error-level diagnostic.
dsrlint: build
	$(GO) run ./cmd/dsrlint -q internal/asm/testdata/uoa.s
	$(GO) run ./cmd/dsrlint -q -builtin control
	$(GO) run ./cmd/dsrlint -q -builtin processing

# Regenerate every table and figure of the paper at full scale.
evaluate: build
	$(GO) run ./cmd/dsrsim -all -runs 1000

bench:
	$(GO) test -bench=. -benchmem .

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hwrand
	$(GO) run ./examples/incremental
	$(GO) run ./examples/spacestudy

# Short fuzzing pass over the parsers (assembler, trace codec) and the
# DSR transform verifier.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=20s -fuzzminimizetime=5s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=20s -fuzzminimizetime=5s ./internal/rvs
	$(GO) test -run=^$$ -fuzz=FuzzDurations -fuzztime=20s -fuzzminimizetime=5s ./internal/rvs
	$(GO) test -run=^$$ -fuzz=FuzzVerifyTransform -fuzztime=20s -fuzzminimizetime=5s ./internal/core

clean:
	$(GO) clean ./...
