# Convenience targets for the dsr reproduction.

GO ?= go

.PHONY: all build test vet bench evaluate examples fuzz clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Regenerate every table and figure of the paper at full scale.
evaluate: build
	$(GO) run ./cmd/dsrsim -all -runs 1000

bench:
	$(GO) test -bench=. -benchmem .

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hwrand
	$(GO) run ./examples/incremental
	$(GO) run ./examples/spacestudy

# Short fuzzing pass over the parsers (assembler, trace codec).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=20s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=20s ./internal/rvs

clean:
	$(GO) clean ./...
