# Convenience targets for the dsr reproduction.

GO ?= go

.PHONY: all build test vet lint race race-campaign bench bench-baseline bench-check profile evaluate examples dsrlint wcet-check leak-check sched-check telemetry-smoke obs-smoke serve-smoke fuzz clean

all: build lint test race race-campaign dsrlint wcet-check leak-check sched-check telemetry-smoke obs-smoke serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck and govulncheck when
# installed (neither is a module dependency — install with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet ran)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The campaign engine's hard invariant under the race detector: every
# Run* series at Workers=8 must be byte-identical (cycles, counters,
# attribution, telemetry event ordering) to Workers=1, with zero data
# races across the worker pool, the canonical-order merge and the
# capture/replay event path.
race-campaign:
	$(GO) test -race -run 'TestCampaign|TestExecute' ./internal/experiments ./internal/campaign ./internal/serve

# Run the repo's own lint/verification toolchain over the shipped
# programs; non-zero exit on any Error-level diagnostic.
dsrlint: build
	$(GO) run ./cmd/dsrlint -q internal/asm/testdata/uoa.s
	$(GO) run ./cmd/dsrlint -q -builtin control
	$(GO) run ./cmd/dsrlint -q -builtin processing

# Soundness gate for the static WCET analyzer: (1) dsrwcet must produce
# a finite bound for every shipped program in every layout mode, and
# (2) the bound must dominate the observed cycles of every run of a
# 200-run randomised campaign (deterministic and DSR layouts, plus the
# processing app) — the invariant the analysis exists to provide.
wcet-check: build
	$(GO) run ./cmd/dsrwcet -q internal/asm/testdata/uoa.s
	$(GO) run ./cmd/dsrwcet -q -builtin control
	$(GO) run ./cmd/dsrwcet -q -mode dsr-eager -builtin control
	$(GO) run ./cmd/dsrwcet -q -mode dsr-lazy -builtin control
	$(GO) run ./cmd/dsrwcet -q -builtin processing
	$(GO) run ./cmd/dsrwcet -q -mode dsr-eager -builtin processing
	$(GO) run ./cmd/dsrwcet -q cmd/dsrlint/testdata/clean.s
	WCET_RUNS=200 $(GO) test -run 'TestWCETSound' -count=1 -v ./internal/experiments
	$(GO) test -run FuzzWCETSound -count=1 ./internal/analysis/wcet

# Leakage-soundness gate for the side-channel analyzer: (1) dsrleak must
# produce finite channel bounds for every shipped program in every
# layout mode, and (2) over a 200-run campaign under the simulated
# prime+probe and evict+time attackers, the measured leakage (log2 of
# distinct observations) must stay below the static bounds, with the
# det >= lazy >= eager monotonicity chain and a strictly positive DSR
# benefit on the access channel (E8's two verdicts).
leak-check: build
	$(GO) run ./cmd/dsrleak -q -builtin control
	$(GO) run ./cmd/dsrleak -q -mode dsr-eager -builtin control
	$(GO) run ./cmd/dsrleak -q -mode dsr-lazy -builtin control
	$(GO) run ./cmd/dsrleak -q -builtin processing
	$(GO) run ./cmd/dsrleak -q -mode dsr-eager -builtin processing
	$(GO) run ./cmd/dsrleak -q cmd/dsrlint/testdata/clean.s
	LEAK_RUNS=200 $(GO) test -run 'TestLeakSound' -count=1 -v ./internal/experiments
	$(GO) test -run FuzzLeakSound -count=1 ./internal/analysis/leak

# Soundness gate for the schedule-feasibility analyzer: (1) dsrsched
# must certify the case-study frame under the deterministic and the
# full randomizer policies, with a 200-draw membership self-check and a
# JSON round-trip through a file spec; (2) over 200 certified major
# frames (the Layout+Sched E9 cell) every schedule the executive draws
# must fall inside the statically enumerated feasible set with zero
# budget overruns — the invariant the certificate exists to provide;
# (3) the grammar fuzzer's committed corpus must hold.
sched-check: build
	$(GO) run ./cmd/dsrsched -q -builtin casestudy
	$(GO) run ./cmd/dsrsched -q -builtin casestudy -rand -sample 200
	$(GO) run ./cmd/dsrsched -json -builtin casestudy -rand > sched-out.json
	$(GO) run ./cmd/dsrsched -q -rand sched-out.json
	rm -f sched-out.json
	SCHED_FRAMES=200 $(GO) test -run 'TestSchedFeas' -count=1 -v ./internal/experiments
	$(GO) test -run FuzzSchedFeas -count=1 ./internal/analysis/schedfeas

# Telemetry end-to-end smoke: run a reduced campaign with the recorder
# on, then exercise every dsrstat path over the produced artefacts —
# summary, all three conversions, the Chrome trace, and the validator
# (exporter round-trips + trace schema). Artefacts land in
# telemetry-out/ (CI uploads trace.json as a workflow artifact).
telemetry-smoke: build
	rm -rf telemetry-out
	$(GO) run ./cmd/dsrsim -iid -runs 600 -telemetry telemetry-out
	$(GO) run ./cmd/dsrstat summary telemetry-out/telemetry.jsonl
	$(GO) run ./cmd/dsrstat convert -to csv telemetry-out/telemetry.jsonl > /dev/null
	$(GO) run ./cmd/dsrstat convert -to prom telemetry-out/telemetry.csv > /dev/null
	$(GO) run ./cmd/dsrstat convert -to jsonl telemetry-out/telemetry.prom > /dev/null
	$(GO) run ./cmd/dsrstat trace telemetry-out/telemetry.jsonl > /dev/null
	$(GO) run ./cmd/dsrstat validate telemetry-out/telemetry.jsonl

# Observability end-to-end smoke: (1) the in-process gate — a 200-run
# 8-worker campaign with the span tracer, live campaign view and HTTP
# server attached, scraped continuously mid-flight (/metrics must parse
# as Prometheus exposition, /campaign must decode; the finished span
# timeline must validate and yield a worker report); then (2) the CLI
# path — dsrsim with -http and -telemetry run twice, sequentially
# ("before": workers=1) and sharded ("after": workers=8), dsrstat
# workers over both exported span timelines (per-worker utilization +
# bottleneck; the reports land in obs-out/workers-{before,after}.txt
# and CI uploads both), and the validator over spans (schema + Chrome
# trace). The "after" timeline is gated: with copy-on-write platform
# forks, the dominant bottleneck class must no longer be the
# canonical-order merge or per-run platform construction — those were
# the fixed scaling bugs, and their reappearance fails CI.
obs-smoke: build
	rm -rf obs-out
	OBS_RUNS=200 $(GO) test -run 'TestObsSmoke' -count=1 -v ./internal/obs
	$(GO) run ./cmd/dsrsim -fig2 -runs 200 -workers 1 -telemetry obs-out/before
	$(GO) run ./cmd/dsrstat workers obs-out/before/spans.jsonl | tee obs-out/workers-before.txt
	$(GO) run ./cmd/dsrsim -fig2 -runs 200 -workers 8 -telemetry obs-out/after -http 127.0.0.1:0
	$(GO) run ./cmd/dsrstat workers obs-out/after/spans.jsonl | tee obs-out/workers-after.txt
	$(GO) run ./cmd/dsrstat workers -assert-not merge-serialisation,platform-construction obs-out/after/spans.jsonl >/dev/null
	$(GO) run ./cmd/dsrstat validate obs-out/after/spans.jsonl
	$(GO) run ./cmd/dsrstat validate obs-out/after/telemetry.jsonl

# Service end-to-end smoke: (1) the soak suite — six concurrent jobs
# surviving 20+ random hard kills and restarts of the daemon with every
# output surface byte-identical to the CLI path; then (2) the
# real-process gate — build dsrserve and dsrrun, run the daemon as a
# separate process, and drive three jobs through it (one plain via
# `dsrrun -submit`, one cancelled and resubmitted, one interrupted by
# SIGKILL-ing the daemon and finished after a restart), checking every
# report byte-identical to a local dsrrun invocation and the daemon
# exiting cleanly on SIGTERM. The service log lands in
# serve-out/dsrserve.log (CI uploads it as a workflow artifact).
serve-smoke: build
	rm -rf serve-out
	SERVE_SOAK=1 $(GO) test -run 'TestServeSoakKillRestart' -count=1 -v ./internal/serve
	SERVE_SMOKE_OUT=$(abspath serve-out) $(GO) test -run 'TestServeSmoke' -count=1 -v ./internal/serve

# Regenerate every table and figure of the paper at full scale.
evaluate: build
	$(GO) run ./cmd/dsrsim -all -runs 1000

bench:
	$(GO) test -bench=. -benchmem .

# Perf-regression harness (cmd/benchgate): bench-baseline records the
# component microbenchmarks (cache / functional memory / TLB / fetch
# loop) and the campaign benchmarks at pinned iteration counts into
# BENCH_BASELINE.json; bench-check re-runs the suite and fails on >15%
# regression of ns/op or throughput (runs/s, instrs/s).
bench-baseline:
	$(GO) run ./cmd/benchgate -record BENCH_BASELINE.json

bench-check:
	$(GO) run ./cmd/benchgate -check BENCH_BASELINE.json -tolerance 0.15

# CPU/heap profiles of a reduced single-worker campaign; artifacts land
# in profile-out/ (gitignored). Inspect with:
#   go tool pprof -top profile-out/cpu.pprof
#   go tool pprof -http=:8080 profile-out/cpu.pprof
profile:
	mkdir -p profile-out
	$(GO) test -run '^$$' -bench 'BenchmarkCampaignWorkers1$$' -benchtime 1x \
		-cpuprofile profile-out/cpu.pprof -memprofile profile-out/mem.pprof \
		-o profile-out/dsr.test .
	$(GO) tool pprof -top -nodecount 15 profile-out/dsr.test profile-out/cpu.pprof

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hwrand
	$(GO) run ./examples/incremental
	$(GO) run ./examples/spacestudy

# Short fuzzing pass over the parsers (assembler, trace codec) and the
# DSR transform verifier.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=20s -fuzzminimizetime=5s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=20s -fuzzminimizetime=5s ./internal/rvs
	$(GO) test -run=^$$ -fuzz=FuzzDurations -fuzztime=20s -fuzzminimizetime=5s ./internal/rvs
	$(GO) test -run=^$$ -fuzz=FuzzVerifyTransform -fuzztime=20s -fuzzminimizetime=5s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzSeedSchedule -fuzztime=20s -fuzzminimizetime=5s ./internal/campaign
	$(GO) test -run=^$$ -fuzz=FuzzWCETSound -fuzztime=20s -fuzzminimizetime=5s ./internal/analysis/wcet
	$(GO) test -run=^$$ -fuzz=FuzzLeakSound -fuzztime=20s -fuzzminimizetime=5s ./internal/analysis/leak
	$(GO) test -run=^$$ -fuzz=FuzzSchedFeas -fuzztime=20s -fuzzminimizetime=5s ./internal/analysis/schedfeas

clean:
	$(GO) clean ./...
	rm -rf telemetry-out obs-out serve-out
