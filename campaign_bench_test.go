// Campaign-engine benchmarks: the same paper-scale 1000-run DSR
// campaign executed at different worker-pool sizes, reporting the
// speedup over the strictly sequential legacy path. The determinism
// invariant (internal/experiments/determinism_test.go) guarantees all
// of these produce byte-identical output, so the only thing that may
// differ is wall time.
package dsr_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"dsr/internal/experiments"
)

// campaignBenchRuns is the paper-scale campaign size the engine is
// dimensioned for.
const campaignBenchRuns = 1000

func campaignBenchConfig(workers int) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Runs = campaignBenchRuns
	cfg.Workers = workers
	return cfg
}

// sequentialCampaignTime memoises the Workers=1 reference time that
// the speedup metric is quoted against.
var (
	seqTimeOnce sync.Once
	seqTime     time.Duration
	seqTimeErr  error
)

func sequentialCampaignTime(b *testing.B) time.Duration {
	b.Helper()
	seqTimeOnce.Do(func() {
		start := time.Now()
		_, seqTimeErr = experiments.RunDSR(campaignBenchConfig(1))
		seqTime = time.Since(start)
	})
	if seqTimeErr != nil {
		b.Fatal(seqTimeErr)
	}
	return seqTime
}

func benchmarkCampaignWorkers(b *testing.B, workers int) {
	ref := sequentialCampaignTime(b)
	cfg := campaignBenchConfig(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDSR(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	per := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(ref)/float64(per), "speedup")
	b.ReportMetric(float64(campaignBenchRuns)/per.Seconds(), "runs/s")
}

func BenchmarkCampaignWorkers1(b *testing.B) { benchmarkCampaignWorkers(b, 1) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchmarkCampaignWorkers(b, 4) }
func BenchmarkCampaignWorkers8(b *testing.B) { benchmarkCampaignWorkers(b, 8) }

// TestCampaignParallelNotSlower is the CI smoke check for the
// engine's reason to exist: on a multicore machine, the default
// parallel campaign must not lose to the sequential path. The bound is
// deliberately loose (parallel ≤ 1.15x sequential) — the benchmarks
// above quantify the actual speedup; this test only catches the
// engine regressing into "parallel in name only" (e.g. a serialising
// lock on the run path).
func TestCampaignParallelNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing smoke test skipped under -race (instrumentation skews the ratio)")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU machine: nothing to parallelise")
	}
	cfg := experiments.DefaultConfig()
	cfg.Runs = 300

	seqCfg := cfg
	seqCfg.Workers = 1
	start := time.Now()
	if _, err := experiments.RunDSR(seqCfg); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(start)

	parCfg := cfg
	parCfg.Workers = 0 // default: NumCPU
	start = time.Now()
	if _, err := experiments.RunDSR(parCfg); err != nil {
		t.Fatal(err)
	}
	par := time.Since(start)

	t.Logf("sequential %v, parallel (%d CPUs) %v, ratio %.2fx",
		seq, runtime.NumCPU(), par, float64(seq)/float64(par))
	if float64(par) > 1.15*float64(seq) {
		t.Errorf("parallel campaign slower than sequential: %v vs %v", par, seq)
	}
}
