// Command dsrlint runs the static-analysis and lint framework
// (internal/analysis) over a program: the standard lint passes
// (reserved registers, return shapes, alignment, frame conventions,
// unreachable code, dead stores), the static stack/window bound, the
// L2 layout conflict lint, and — with -dsr — the differential DSR
// transform verifier over the core.Transform output.
//
//	dsrlint prog.s                 lint an assembly source
//	dsrlint -builtin control       lint a built-in program (control,
//	                               processing)
//	dsrlint -dsr prog.s            also verify the DSR transformation
//	dsrlint -stack prog.s          print the static stack bounds
//	dsrlint -wcet prog.s           also run the static WCET analyzer
//	dsrlint -leak prog.s           also run the static side-channel
//	                               leakage analyzer
//	dsrlint -json prog.s           emit diagnostics as a stable JSON
//	                               document (schema: analysis.ReportJSON)
//	dsrlint -Werror prog.s         treat warnings as errors for the exit
//	                               status
//
// Exit status: 0 when no Error-level diagnostic was produced (under
// -Werror: no Warning either), 1 otherwise, 2 on usage or input errors
// — so it can gate a build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsr/internal/analysis"
	"dsr/internal/analysis/leak"
	"dsr/internal/analysis/wcet"
	"dsr/internal/asm"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole tool behind a testable seam: flags and positional
// arguments in, diagnostics out on the writers, and the process exit
// status as the return value (0 clean, 1 findings, 2 usage/input).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		builtin     = fs.String("builtin", "", "lint a built-in program instead of a source file: control | processing")
		dsr         = fs.Bool("dsr", true, "run the DSR transform verifier over the core.Transform output")
		maxOverhead = fs.Float64("max-overhead", 0, "reject DSR static instruction overhead above this fraction (0 disables; the paper's budget is 0.02)")
		l2          = fs.Bool("l2", true, "run the static L2 layout conflict lint on the sequential placement")
		l2MinFrac   = fs.Float64("l2-minfrac", 0.5, "report L2 conflicts above this overlap fraction")
		stack       = fs.Bool("stack", false, "print the static call-depth/stack/window bounds")
		runWcet     = fs.Bool("wcet", false, "run the static WCET analyzer and report its bound and diagnostics")
		runLeak     = fs.Bool("leak", false, "run the static side-channel leakage analyzer and report its channel bounds")
		jsonOut     = fs.Bool("json", false, "emit diagnostics as a stable JSON document on stdout")
		werror      = fs.Bool("Werror", false, "treat warnings as errors for the exit status")
		quiet       = fs.Bool("q", false, "suppress info-level diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p, lines, err := loadProgram(*builtin, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "dsrlint:", err)
		return 2
	}

	diags := analysis.Run(p, analysis.DefaultPasses(), lines)

	if *l2 {
		if seq, err := loader.LayoutSequential(p, loader.DefaultSequentialConfig()); err == nil {
			diags = append(diags, analysis.LintL2Layout(p, seq.Placement,
				platform.ProximaLEON3().L2, analysis.L2LintOptions{MinFrac: *l2MinFrac})...)
		}
	}

	if *dsr {
		tp, meta, _, err := core.Transform(p)
		if err != nil {
			// An untransformable program is a lint finding, not a crash.
			diags = append(diags, analysis.Diagnostic{
				Pass: analysis.PassVerifyDSR, Sev: analysis.Error, Index: -1,
				Msg: "core.Transform failed: " + err.Error(),
			})
		} else {
			diags = append(diags, analysis.VerifyTransform(p, tp, analysis.TransformInfo{
				FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym,
				Funcs: meta.Funcs, MaxOverheadFrac: *maxOverhead,
			})...)
		}
	}

	var wcetRep *wcet.Report
	if *runWcet {
		wcetRep = wcet.Analyze(p, wcet.Config{Lines: lines})
		diags = append(diags, wcetRep.Diags...)
	}

	var leakRep *leak.Report
	if *runLeak {
		leakRep = leak.Analyze(p, leak.Config{Lines: lines})
		diags = append(diags, leakRep.Diags...)
	}

	if *stack && !*jsonOut {
		sb, err := analysis.AnalyzeStack(p, analysis.StackOptions{
			NumWindows: platform.ProximaLEON3().CPU.NumWindows,
		})
		if err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pass: "stack", Sev: analysis.Error, Index: -1, Msg: err.Error(),
			})
		} else {
			fmt.Fprintf(stdout, "%s: call depth ≤ %d, window depth ≤ %d, stack ≤ %d bytes, spilled windows ≤ %d\n",
				p.Name, sb.MaxCallDepth, sb.MaxWindowDepth, sb.MaxStackBytes, sb.WindowSpillBound)
			fmt.Fprintf(stdout, "  worst chain: %v\n", sb.WorstChain)
		}
	}

	errs, warns := 0, 0
	for _, d := range diags {
		switch d.Sev {
		case analysis.Error:
			errs++
		case analysis.Warning:
			warns++
		}
	}
	failed := errs > 0 || (*werror && warns > 0)

	if *jsonOut {
		rep := analysis.NewReportJSON(p.Name, diags)
		if wcetRep != nil {
			if raw, err := wcetRep.JSON(); err == nil {
				rep.WCET = raw
			}
		}
		if leakRep != nil {
			if raw, err := leakRep.JSON(); err == nil {
				rep.Leak = raw
			}
		}
		out, err := rep.Marshal()
		if err != nil {
			fmt.Fprintln(stderr, "dsrlint:", err)
			return 2
		}
		stdout.Write(out)
		fmt.Fprintln(stdout)
		if failed {
			return 1
		}
		return 0
	}

	for _, d := range diags {
		if d.Sev == analysis.Info && *quiet {
			continue
		}
		fmt.Fprintln(stdout, d)
	}
	if wcetRep != nil && wcetRep.Bounded {
		fmt.Fprintf(stdout, "dsrlint: wcet bound %d cycles (%s mode, %d loops)\n",
			wcetRep.BoundCycles, wcetRep.Mode, len(wcetRep.Loops))
	}
	if leakRep != nil && leakRep.Bounded {
		fmt.Fprintf(stdout, "dsrlint: leak bound %.1f access + %.1f trace bits (%s mode)\n",
			leakRep.AccessBits, leakRep.TraceBits, leakRep.Mode)
	}
	if failed {
		if *werror && errs == 0 {
			fmt.Fprintf(stderr, "dsrlint: %d warning(s) in %s promoted by -Werror\n", warns, p.Name)
		} else {
			fmt.Fprintf(stderr, "dsrlint: %d error(s) in %s\n", errs, p.Name)
		}
		return 1
	}
	fmt.Fprintf(stdout, "dsrlint: %s clean (%d diagnostics)\n", p.Name, len(diags))
	return 0
}

func loadProgram(builtin string, args []string) (*prog.Program, analysis.LineResolver, error) {
	switch builtin {
	case "control":
		p, err := spaceapp.BuildControl()
		return p, nil, err
	case "processing":
		p, err := spaceapp.BuildProcessing()
		return p, nil, err
	case "":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("usage: dsrlint [flags] prog.s | dsrlint -builtin control|processing")
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, nil, err
		}
		p, info, err := asm.AssembleWithInfo(string(src))
		if err != nil {
			return nil, nil, err
		}
		return p, info.InstrLine, nil
	default:
		return nil, nil, fmt.Errorf("unknown builtin %q (want control or processing)", builtin)
	}
}
