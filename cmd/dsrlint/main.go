// Command dsrlint runs the static-analysis and lint framework
// (internal/analysis) over a program: the standard lint passes
// (reserved registers, return shapes, alignment, frame conventions,
// unreachable code, dead stores), the static stack/window bound, the
// L2 layout conflict lint, and — with -dsr — the differential DSR
// transform verifier over the core.Transform output.
//
//	dsrlint prog.s                 lint an assembly source
//	dsrlint -builtin control       lint a built-in program (control,
//	                               processing)
//	dsrlint -dsr prog.s            also verify the DSR transformation
//	dsrlint -stack prog.s          print the static stack bounds
//
// Exit status: 0 when no Error-level diagnostic was produced, 1
// otherwise, 2 on usage or input errors — so it can gate a build.
package main

import (
	"flag"
	"fmt"
	"os"

	"dsr/internal/analysis"
	"dsr/internal/asm"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func main() {
	var (
		builtin     = flag.String("builtin", "", "lint a built-in program instead of a source file: control | processing")
		dsr         = flag.Bool("dsr", true, "run the DSR transform verifier over the core.Transform output")
		maxOverhead = flag.Float64("max-overhead", 0, "reject DSR static instruction overhead above this fraction (0 disables; the paper's budget is 0.02)")
		l2          = flag.Bool("l2", true, "run the static L2 layout conflict lint on the sequential placement")
		l2MinFrac   = flag.Float64("l2-minfrac", 0.5, "report L2 conflicts above this overlap fraction")
		stack       = flag.Bool("stack", false, "print the static call-depth/stack/window bounds")
		quiet       = flag.Bool("q", false, "suppress info-level diagnostics")
	)
	flag.Parse()

	p, lines, err := loadProgram(*builtin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrlint:", err)
		os.Exit(2)
	}

	diags := analysis.Run(p, analysis.DefaultPasses(), lines)

	if *l2 {
		if seq, err := loader.LayoutSequential(p, loader.DefaultSequentialConfig()); err == nil {
			diags = append(diags, analysis.LintL2Layout(p, seq.Placement,
				platform.ProximaLEON3().L2, analysis.L2LintOptions{MinFrac: *l2MinFrac})...)
		}
	}

	if *dsr {
		tp, meta, _, err := core.Transform(p)
		if err != nil {
			// An untransformable program is a lint finding, not a crash.
			diags = append(diags, analysis.Diagnostic{
				Pass: analysis.PassVerifyDSR, Sev: analysis.Error, Index: -1,
				Msg: "core.Transform failed: " + err.Error(),
			})
		} else {
			diags = append(diags, analysis.VerifyTransform(p, tp, analysis.TransformInfo{
				FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym,
				Funcs: meta.Funcs, MaxOverheadFrac: *maxOverhead,
			})...)
		}
	}

	if *stack {
		sb, err := analysis.AnalyzeStack(p, analysis.StackOptions{
			NumWindows: platform.ProximaLEON3().CPU.NumWindows,
		})
		if err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pass: "stack", Sev: analysis.Error, Index: -1, Msg: err.Error(),
			})
		} else {
			fmt.Printf("%s: call depth ≤ %d, window depth ≤ %d, stack ≤ %d bytes, spilled windows ≤ %d\n",
				p.Name, sb.MaxCallDepth, sb.MaxWindowDepth, sb.MaxStackBytes, sb.WindowSpillBound)
			fmt.Printf("  worst chain: %v\n", sb.WorstChain)
		}
	}

	errs := 0
	for _, d := range diags {
		if d.Sev == analysis.Info && *quiet {
			continue
		}
		if d.Sev == analysis.Error {
			errs++
		}
		fmt.Println(d)
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "dsrlint: %d error(s) in %s\n", errs, p.Name)
		os.Exit(1)
	}
	fmt.Printf("dsrlint: %s clean (%d diagnostics)\n", p.Name, len(diags))
}

func loadProgram(builtin string) (*prog.Program, analysis.LineResolver, error) {
	switch builtin {
	case "control":
		p, err := spaceapp.BuildControl()
		return p, nil, err
	case "processing":
		p, err := spaceapp.BuildProcessing()
		return p, nil, err
	case "":
		if flag.NArg() != 1 {
			return nil, nil, fmt.Errorf("usage: dsrlint [flags] prog.s | dsrlint -builtin control|processing")
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return nil, nil, err
		}
		p, info, err := asm.AssembleWithInfo(string(src))
		if err != nil {
			return nil, nil, err
		}
		return p, info.InstrLine, nil
	default:
		return nil, nil, fmt.Errorf("unknown builtin %q (want control or processing)", builtin)
	}
}
