; dsrlint test fixture: an Error-level finding that still assembles —
; a store into the register-window save area at the bottom of the frame.
.program error
.entry main

.func main frame=96
    save 96
    mov 5, %l0
    st %l0, [%sp+8]      ; clobbers the window spill area [0,64)
    halt
