; dsrlint test fixture: lints clean and the WCET analyzer produces a
; finite bound (one counted loop, one annotated-equivalent trip count).
.program clean
.entry main

.data buf size=64 align=8
.word 1 2 3 4

.func main frame=96
    save 96
    set buf, %l0
    mov 0, %l1           ; i
    mov 0, %l2           ; sum
loop:
    sll %l1, 2, %l3
    add %l0, %l3, %l4
    ld [%l4+0], %o0
    add %l2, %o0, %l2
    add %l1, 1, %l1
    cmp %l1, 8
    bl loop
    st %l2, [%l0+0]
    halt
