; dsrlint test fixture: warning-only findings (a dead register store),
; so the exit status is 0 by default and 1 under -Werror.
.program warn
.entry main

.data buf size=64 align=8
.word 1 2 3 4

.func main frame=96
    save 96
    set buf, %l0
    mov 7, %l5           ; dead store: overwritten before any read
    mov 0, %l5
    mov 0, %l1
    mov 0, %l2
loop:
    sll %l1, 2, %l3
    add %l0, %l3, %l4
    ld [%l4+0], %o0
    add %l2, %o0, %l2
    add %l1, 1, %l1
    cmp %l1, 8
    bl loop
    st %l2, [%l0+0]
    halt
