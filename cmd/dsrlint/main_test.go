package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden JSON files")

// runTool invokes the tool exactly as main does, capturing both streams.
func runTool(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExitCodes pins the documented contract: 0 clean (warnings do not
// fail), 1 on errors or -Werror'd warnings, 2 on usage/input problems.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"testdata/clean.s"}, 0},
		{"warnings are not errors", []string{"testdata/warn.s"}, 0},
		{"werror promotes warnings", []string{"-Werror", "testdata/warn.s"}, 1},
		{"error finding", []string{"testdata/error.s"}, 1},
		{"error finding json", []string{"-json", "testdata/error.s"}, 1},
		{"missing file", []string{"testdata/nope.s"}, 2},
		{"unknown builtin", []string{"-builtin", "nope"}, 2},
		{"no input", []string{}, 2},
		{"builtin control", []string{"-builtin", "control"}, 0},
		{"clean with wcet", []string{"-wcet", "testdata/clean.s"}, 0},
		{"clean with leak", []string{"-leak", "testdata/clean.s"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runTool(t, tc.args...)
			if code != tc.want {
				t.Fatalf("dsrlint %v: exit %d, want %d\nstderr:\n%s", tc.args, code, tc.want, stderr)
			}
		})
	}
}

// TestJSONGolden locks the -json output byte-for-byte against golden
// files: the document is a published schema (analysis.ReportJSON) that
// downstream tooling parses, so any change must be a conscious one
// (run with -update to accept it).
func TestJSONGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		// -dsr=false and -l2=false keep the fixture reports focused on
		// the file's own findings rather than layout-dependent ones.
		{"clean+wcet", []string{"-json", "-wcet", "-dsr=false", "-l2=false", "testdata/clean.s"}, "clean_wcet.json"},
		{"clean+leak", []string{"-json", "-leak", "-dsr=false", "-l2=false", "testdata/clean.s"}, "clean_leak.json"},
		{"warn", []string{"-json", "-dsr=false", "-l2=false", "testdata/warn.s"}, "warn.json"},
		{"error", []string{"-json", "-dsr=false", "-l2=false", "testdata/error.s"}, "error.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stdout, stderr := runTool(t, tc.args...)
			if stderr != "" {
				t.Fatalf("unexpected stderr:\n%s", stderr)
			}
			if !json.Valid([]byte(stdout)) {
				t.Fatalf("output is not valid JSON:\n%s", stdout)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(stdout), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/dsrlint -update` to create goldens)", err)
			}
			if string(want) != stdout {
				t.Fatalf("golden mismatch for %s\n--- want\n%s--- got\n%s", tc.golden, want, stdout)
			}
		})
	}
}

// TestJSONStableAcrossRuns guards the determinism claim directly: the
// same input must serialise identically on repeated invocations.
func TestJSONStableAcrossRuns(t *testing.T) {
	args := []string{"-json", "-wcet", "testdata/clean.s"}
	_, first, _ := runTool(t, args...)
	for i := 0; i < 3; i++ {
		_, again, _ := runTool(t, args...)
		if again != first {
			t.Fatalf("run %d differs from first:\n%s\nvs\n%s", i+2, again, first)
		}
	}
}
