// Command dsrsched runs the static schedule-feasibility analyzer
// (internal/analysis/schedfeas) over a randomized cyclic-executive
// task set and prints the verdict: whether *every* schedule the
// randomizer policy can draw is feasible, how much schedule entropy
// the policy yields, and how resistant the arrival sequence is to
// inter-arrival inference (guessing entropy per task).
//
//	dsrsched -builtin casestudy                 analyse the paper's frame
//	dsrsched -builtin casestudy -rand           ... under the full randomizer
//	dsrsched -slots -permute -jitter 40 spec.json
//	                                            analyse a task set from JSON
//	dsrsched -json -builtin casestudy -rand     emit the report as JSON
//	dsrsched -sample 500 -builtin casestudy -rand
//	                                            draw 500 schedules and check
//	                                            each against the certificate
//
// The verdict is sound: a certificate is issued only when the analyzer
// has covered the randomizer's entire support, and the randomized
// executive (internal/rtos) refuses to run without one. When the draw
// space exceeds the enumeration caps the analyzer refuses instead of
// sampling (exit 1, "refused"). The repo's CI cross-checks membership
// and overrun-freedom over randomised campaigns (make sched-check).
//
// Exit status: 0 when the policy was certified feasible, 1 when the
// analysis found a violating draw or refused, 2 on usage or input
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dsr/internal/analysis/schedfeas"
	"dsr/internal/experiments"
	"dsr/internal/prng"
)

func main() {
	var (
		builtin  = flag.String("builtin", "", "analyse a built-in task set: casestudy")
		rand     = flag.Bool("rand", false, "shorthand for the full case-study randomizer (-slots -permute -jitter 40)")
		slots    = flag.Bool("slots", false, "policy: draw each activation's segment (slot) within its period")
		permute  = flag.Bool("permute", false, "policy: permute same-criticality window order within a segment")
		jitter   = flag.Int("jitter", 0, "policy: uniform release jitter bound in ms (0 = none)")
		critOrd  = flag.Bool("crit-order", false, "require non-increasing criticality within each segment")
		maxAsgn  = flag.Int("max-assignments", 0, "cap on enumerated segment assignments (0 = default 4096)")
		maxOrds  = flag.Int("max-orders", 0, "cap on enumerated window orders per segment (0 = default 120)")
		sample   = flag.Int("sample", 0, "draw N schedules and verify each against the certificate (self-check)")
		seed     = flag.Uint64("seed", 1, "base seed for -sample draws")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		quiet    = flag.Bool("q", false, "suppress the per-task and support tables")
	)
	flag.Parse()

	spec, err := loadSpec(*builtin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrsched:", err)
		os.Exit(2)
	}
	if *critOrd {
		spec.CritOrdered = true
	}

	policy := schedfeas.Policy{
		SegmentChoice:    *slots,
		PermuteOrder:     *permute,
		SlotJitterMillis: *jitter,
	}
	if *rand {
		policy = experiments.CaseStudySchedPolicy(true)
	}

	rep := schedfeas.Analyze(spec, policy, schedfeas.Config{
		MaxAssignments: *maxAsgn,
		MaxOrders:      *maxOrds,
	})

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsrsched:", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else {
		printText(rep, *quiet)
	}

	if *sample > 0 {
		if err := sampleDraws(rep, *sample, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "dsrsched:", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("sample: %d drawn schedules, all inside the certified support\n", *sample)
		}
	}
	if !rep.Feasible {
		os.Exit(1)
	}
}

// sampleDraws is the belt-and-braces self-check: the analyzer claims to
// cover the randomizer's support, so every actual draw must be a member.
func sampleDraws(rep *schedfeas.Report, n int, seed uint64) error {
	if rep.Cert == nil {
		return fmt.Errorf("no certificate to sample against (infeasible or refused)")
	}
	for i := 0; i < n; i++ {
		fs, err := schedfeas.Draw(&rep.Spec, rep.Policy, prng.NewMWC(seed+uint64(i)))
		if err != nil {
			return fmt.Errorf("draw %d failed: %w", i, err)
		}
		if err := rep.Cert.Contains(fs); err != nil {
			return fmt.Errorf("draw %d outside certified support: %w", i, err)
		}
	}
	return nil
}

func printText(r *schedfeas.Report, quiet bool) {
	fmt.Printf("%d-task set, %d ms frame, policy %s\n",
		len(r.Spec.Tasks), r.Spec.FrameMillis, r.Policy)
	for _, d := range r.Diags {
		fmt.Println(" ", d)
	}
	for _, v := range r.Violations {
		fmt.Printf("  violating draw: task %s activation %d: %s\n", v.Task, v.Activation, v.Reason)
		if v.Schedule != nil {
			for _, w := range v.Schedule.Windows {
				fmt.Printf("    %4d ms  %-12s act %d  (%d ms window)\n",
					w.StartMillis, w.Task, w.Activation, w.BudgetMillis)
			}
		}
	}
	switch {
	case r.Refused:
		fmt.Println("REFUSED: the draw space exceeds the enumeration caps (raise -max-assignments / -max-orders)")
		return
	case !r.Feasible:
		fmt.Println("INFEASIBLE: the randomizer can draw a schedule that violates the task set")
		return
	}
	fmt.Printf("FEASIBLE: all %.0f reachable schedules satisfy the task set (%d segment assignments)\n",
		r.Schedules, r.Assignments)
	fmt.Printf("  schedule entropy: %.2f bits/frame\n", r.EntropyBits)
	if quiet {
		return
	}
	fmt.Println("  inter-arrival inference resistance:")
	for _, t := range r.Tasks {
		fmt.Printf("    %-12s %3d reachable offsets, %6.2f offset bits, guessing entropy %.1f\n",
			t.Task, t.DistinctOffsets, t.OffsetBits, t.GuessingEntropy)
	}
	if r.Cert != nil {
		fmt.Println("  certified start-time support (ms, inclusive):")
		for _, s := range r.Cert.Support {
			fmt.Printf("    %-12s act %-3d [%d, %d]\n", s.Task, s.Activation, s.LoMillis, s.HiMillis)
		}
	}
}

func loadSpec(builtin string) (*schedfeas.Spec, error) {
	switch builtin {
	case "casestudy":
		return experiments.CaseStudySchedSpec(), nil
	case "":
		if flag.NArg() != 1 {
			return nil, fmt.Errorf("usage: dsrsched [flags] spec.json | dsrsched -builtin casestudy")
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return nil, err
		}
		spec := &schedfeas.Spec{}
		if err := json.Unmarshal(src, spec); err != nil {
			return nil, fmt.Errorf("%s: %w", flag.Arg(0), err)
		}
		if spec.FrameMillis == 0 {
			// Not a bare task set — accept a previously emitted -json
			// report too, so analyses can be re-run from saved output.
			var rep struct {
				Spec *schedfeas.Spec `json:"spec"`
			}
			if err := json.Unmarshal(src, &rep); err == nil && rep.Spec != nil && rep.Spec.FrameMillis != 0 {
				return rep.Spec, nil
			}
		}
		return spec, nil
	default:
		return nil, fmt.Errorf("unknown builtin %q (want casestudy)", builtin)
	}
}
