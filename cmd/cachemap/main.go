// Command cachemap is the layout diagnostic: it prints, for the control
// task (or an assembly file), which memory objects alias in the unified
// direct-mapped L2 under three layouts — the naive sequential link map,
// the cache-aware positioned map (Mezzetti & Vardanega, the paper's
// reference [12]), and one sample DSR layout. It makes "a bad and rare
// cache layout for the L2" (§VI) visible as a table.
//
//	cachemap                 analyse the built-in control task
//	cachemap prog.s          analyse an assembled program
//	cachemap -min 8          only show conflicts of >= 8 shared sets
package main

import (
	"flag"
	"fmt"
	"os"

	"dsr/internal/asm"
	"dsr/internal/core"
	"dsr/internal/experiments"
	"dsr/internal/layout"
	"dsr/internal/loader"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func main() {
	var (
		minShared = flag.Int("min", 16, "minimum shared L2 sets to report")
		seed      = flag.Uint64("seed", 1, "seed for the sampled DSR layout")
		top       = flag.Int("top", 12, "conflicts to show per layout")
	)
	flag.Parse()

	var (
		p   *prog.Program
		err error
	)
	if flag.NArg() == 1 {
		src, rerr := os.ReadFile(flag.Arg(0))
		die(rerr)
		p, err = asm.Assemble(string(src))
	} else {
		p, err = spaceapp.BuildControl()
	}
	die(err)

	plat := platform.New(platform.ProximaLEON3())
	l2 := plat.Cfg.L2
	weights := experiments.ControlLayoutWeights(p)

	seq, err := loader.LayoutSequential(p, loader.DefaultSequentialConfig())
	die(err)
	show := func(name string, pr *prog.Program, pl loader.Placement) {
		objs := layout.FromPlacement(pr, pl)
		fmt.Printf("\n[%s]  weighted overlap score: %.0f\n",
			name, layout.TotalWeightedOverlap(objs, l2, weights))
		cs := layout.Conflicts(objs, l2, *minShared)
		if len(cs) == 0 {
			fmt.Println("  no conflicts above threshold")
			return
		}
		fmt.Printf("  %-18s %-18s %-12s %s\n", "object A", "object B", "shared sets", "coverage")
		for i, c := range cs {
			if i >= *top {
				fmt.Printf("  ... and %d more\n", len(cs)-i)
				break
			}
			fmt.Printf("  %-18s %-18s %-12d %.0f%% / %.0f%%\n",
				c.A, c.B, c.SharedSets, c.FracA*100, c.FracB*100)
		}
	}

	show("naive sequential link map", p, seq.Placement)

	pos, err := layout.Optimize(p, l2, weights, loader.DefaultSequentialConfig())
	die(err)
	show("cache-aware positioned map (ref. [12])", p, pos)

	rt, err := core.NewRuntime(p, plat, core.Options{})
	die(err)
	_, err = rt.Reboot(*seed)
	die(err)
	// The DSR image is the transformed program: analyse its placement
	// with the transformed symbol sizes (incl. the metadata tables).
	show(fmt.Sprintf("sampled DSR layout (seed %d)", *seed),
		rt.Program(), rt.Placement())
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachemap:", err)
		os.Exit(1)
	}
}
