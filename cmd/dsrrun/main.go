// Command dsrrun assembles a program written in the simulator's
// assembly syntax (see internal/asm) and executes it on the PROXIMA
// LEON3 platform — once on the deterministic baseline, or as a full DSR
// measurement campaign with MBPTA analysis.
//
//	dsrrun prog.s                  run once, print cycles and counters
//	dsrrun -disasm prog.s          dump the assembled program
//	dsrrun -dsr -runs 500 prog.s   DSR campaign + pWCET analysis
//	dsrrun -telemetry prog.s       also print the per-component cycle
//	                               attribution (single run or campaign)
//	dsrrun -progress -dsr prog.s   per-run campaign progress on stderr
//	dsrrun -http :0 -dsr prog.s    serve live campaign introspection
//	                               (/metrics, /campaign, /events SSE,
//	                               /debug/pprof) while the campaign runs
//	dsrrun -dsr -submit URL prog.s submit the campaign to a dsrserve
//	                               daemon, wait, and print the report —
//	                               byte-identical to running it locally
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"dsr/internal/analysis"
	"dsr/internal/asm"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/obs"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/rvs"
	"dsr/internal/serve"
	"dsr/internal/telemetry"
)

func main() {
	var (
		useDSR   = flag.Bool("dsr", false, "run a DSR measurement campaign instead of a single run")
		runs     = flag.Int("runs", 500, "campaign size with -dsr")
		seed     = flag.Uint64("seed", 1, "base layout seed with -dsr")
		workers  = flag.Int("workers", 0, "campaign worker-pool size with -dsr: 0 = one per CPU, 1 = sequential; output is identical for every value")
		disasm   = flag.Bool("disasm", false, "print the assembled program and exit")
		telem    = flag.Bool("telemetry", false, "enable cycle attribution and print the per-component split")
		progress = flag.Bool("progress", false, "print per-run campaign progress to stderr")
		httpAddr = flag.String("http", "", "with -dsr: serve live observability on this address (\":0\" picks a free port)")
		submit   = flag.String("submit", "", "with -dsr: submit the campaign to a dsrserve daemon at this base URL instead of running locally")
		jobID    = flag.String("job", "", "with -submit: client-chosen job id (idempotency key)")
		priority = flag.Int("priority", 0, "with -submit: job priority (higher runs sooner)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsrrun [-dsr] [-runs N] [-disasm] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	die(err)
	p, err := asm.Assemble(string(src))
	die(err)

	if *disasm {
		dump(p)
		return
	}

	if !*useDSR {
		img, err := loader.Load(p, loader.DefaultSequentialConfig())
		die(err)
		plat := platform.New(platform.ProximaLEON3())
		if *telem {
			plat.EnableAttribution()
		}
		plat.LoadImage(img)
		res, err := plat.Run()
		die(err)
		fmt.Printf("%s: %d cycles, %%o0=%d (0x%x)\n", p.Name, res.Cycles, res.ExitValue, res.ExitValue)
		if *telem {
			die(rvs.WriteCounterSummary(os.Stdout, p.Name, res.PMCs, res.Attribution))
		} else {
			fmt.Printf("  instr=%d fpu=%d icmiss=%d dcmiss=%d l2miss=%d\n",
				res.PMCs.Instr, res.PMCs.FPU, res.PMCs.ICMiss, res.PMCs.DCMiss, res.PMCs.L2Miss)
		}
		return
	}

	spec := serve.Spec{
		ID: *jobID, Source: string(src), Runs: *runs, Seed: *seed,
		Workers: *workers, Priority: *priority, Attribution: *telem,
	}

	if *submit != "" {
		submitCampaign(&spec, *submit)
		return
	}

	plat := platform.New(platform.ProximaLEON3())
	if *telem {
		plat.EnableAttribution()
	}
	rt, err := core.NewRuntime(p, plat, core.Options{})
	die(err)

	// Verify the DSR transformation before measuring anything: a
	// malformed rewrite would corrupt the campaign silently.
	verify := analysis.VerifyTransform(p, rt.Program(), analysis.TransformInfo{
		FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym,
		Funcs: rt.Metadata().Funcs,
	})
	if analysis.HasErrors(verify) {
		for _, d := range analysis.Errors(verify) {
			fmt.Fprintln(os.Stderr, "dsrrun:", d)
		}
		fmt.Fprintln(os.Stderr, "dsrrun: DSR transform verification failed; refusing to run the campaign")
		os.Exit(1)
	}

	// The campaign proper runs on serve.Run — the same runner behind the
	// dsrserve daemon, so CLI and service outputs are byte-identical by
	// construction: per-run seeds come from the splittable schedule (a
	// pure function of -seed and the run index), every worker owns a
	// private platform + runtime, and the merge streams execution times
	// into the MBPTA stream in canonical run order — identical at every
	// -workers value.
	//
	// Live introspection is strictly one-way: the tracer records
	// host-side per-worker timelines and the observer feeds the HTTP
	// view; neither changes what the campaign computes.
	var (
		tracer *telemetry.Tracer
		view   *obs.Campaign
	)
	if *httpAddr != "" {
		tracer = telemetry.NewTracer()
		view = obs.NewCampaign(nil, tracer, spec.MBPTAOptions())
		srv, err := obs.Serve(*httpAddr, view)
		die(err)
		defer srv.Close()
		defer view.Done()
		fmt.Fprintf(os.Stderr, "observability server on http://%s (campaign, events, pprof)\n", srv.Addr())
	}

	out, err := serve.Run(spec, nil, serve.Hooks{
		Tracer:   tracer,
		Observer: view,
		OnPoint: func(pt serve.Point) {
			if *progress && ((pt.Index+1)%50 == 0 || pt.Index+1 == *runs) {
				fmt.Fprintf(os.Stderr, "  %s: %d/%d runs\r", p.Name, pt.Index+1, *runs)
				if pt.Index+1 == *runs {
					fmt.Fprintln(os.Stderr)
				}
			}
		},
	})
	if out != nil {
		fmt.Print(serve.FormatReport(out))
	}
	die(err)
}

// submitCampaign runs the campaign remotely: submit to the daemon,
// back off on queue-full, wait for a terminal state and print the
// report the daemon rendered — the same bytes the local path prints.
func submitCampaign(spec *serve.Spec, base string) {
	cl := &serve.Client{Base: base}
	var st serve.JobStatus
	for {
		var err error
		st, err = cl.Submit(*spec)
		var se *serve.StatusError
		if errors.As(err, &se) && se.Code == 429 {
			wait := se.RetryAfter
			if wait <= 0 {
				wait = 1
			}
			fmt.Fprintf(os.Stderr, "dsrrun: queue full, retrying in %ds\n", wait)
			time.Sleep(time.Duration(wait) * time.Second)
			continue
		}
		die(err)
		break
	}
	fmt.Fprintf(os.Stderr, "submitted job %s to %s\n", st.ID, base)
	st, err := cl.Wait(st.ID, 0)
	die(err)
	// A failed job may still have a partial report (analysis-stage
	// rejection), mirroring what the local path prints before exiting.
	rep, rerr := cl.Report(st.ID)
	if rerr == nil {
		os.Stdout.Write(rep) //nolint:errcheck // terminal write
	}
	if st.State != serve.StateDone {
		die(fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	}
	die(rerr)
}

func dump(p *prog.Program) {
	fmt.Printf(".program %s\n.entry %s\n", p.Name, p.Entry)
	for _, d := range p.Data {
		fmt.Printf(".data %s size=%d align=%d", d.Name, d.Size, d.Align)
		if len(d.Init) > 0 {
			fmt.Printf("  ; %d init words", len(d.Init))
		}
		fmt.Println()
	}
	for _, f := range p.Functions {
		if f.Leaf {
			fmt.Printf("\n.leaf %s\n", f.Name)
		} else {
			fmt.Printf("\n.func %s frame=%d\n", f.Name, f.FrameSize)
		}
		for i := range f.Code {
			fmt.Printf("    %s\n", f.Code[i].String())
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrrun:", err)
		os.Exit(1)
	}
}
