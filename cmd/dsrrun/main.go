// Command dsrrun assembles a program written in the simulator's
// assembly syntax (see internal/asm) and executes it on the PROXIMA
// LEON3 platform — once on the deterministic baseline, or as a full DSR
// measurement campaign with MBPTA analysis.
//
//	dsrrun prog.s                  run once, print cycles and counters
//	dsrrun -disasm prog.s          dump the assembled program
//	dsrrun -dsr -runs 500 prog.s   DSR campaign + pWCET analysis
//	dsrrun -telemetry prog.s       also print the per-component cycle
//	                               attribution (single run or campaign)
//	dsrrun -progress -dsr prog.s   per-run campaign progress on stderr
//	dsrrun -http :0 -dsr prog.s    serve live campaign introspection
//	                               (/metrics, /campaign, /events SSE,
//	                               /debug/pprof) while the campaign runs
package main

import (
	"flag"
	"fmt"
	"os"

	"dsr/internal/analysis"
	"dsr/internal/asm"
	"dsr/internal/campaign"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/mbpta"
	"dsr/internal/obs"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/rvs"
	"dsr/internal/telemetry"
)

func main() {
	var (
		useDSR   = flag.Bool("dsr", false, "run a DSR measurement campaign instead of a single run")
		runs     = flag.Int("runs", 500, "campaign size with -dsr")
		seed     = flag.Uint64("seed", 1, "base layout seed with -dsr")
		workers  = flag.Int("workers", 0, "campaign worker-pool size with -dsr: 0 = one per CPU, 1 = sequential; output is identical for every value")
		disasm   = flag.Bool("disasm", false, "print the assembled program and exit")
		telem    = flag.Bool("telemetry", false, "enable cycle attribution and print the per-component split")
		progress = flag.Bool("progress", false, "print per-run campaign progress to stderr")
		httpAddr = flag.String("http", "", "with -dsr: serve live observability on this address (\":0\" picks a free port)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsrrun [-dsr] [-runs N] [-disasm] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	die(err)
	p, err := asm.Assemble(string(src))
	die(err)

	if *disasm {
		dump(p)
		return
	}

	if !*useDSR {
		img, err := loader.Load(p, loader.DefaultSequentialConfig())
		die(err)
		plat := platform.New(platform.ProximaLEON3())
		if *telem {
			plat.EnableAttribution()
		}
		plat.LoadImage(img)
		res, err := plat.Run()
		die(err)
		fmt.Printf("%s: %d cycles, %%o0=%d (0x%x)\n", p.Name, res.Cycles, res.ExitValue, res.ExitValue)
		if *telem {
			die(rvs.WriteCounterSummary(os.Stdout, p.Name, res.PMCs, res.Attribution))
		} else {
			fmt.Printf("  instr=%d fpu=%d icmiss=%d dcmiss=%d l2miss=%d\n",
				res.PMCs.Instr, res.PMCs.FPU, res.PMCs.ICMiss, res.PMCs.DCMiss, res.PMCs.L2Miss)
		}
		return
	}

	plat := platform.New(platform.ProximaLEON3())
	if *telem {
		plat.EnableAttribution()
	}
	rt, err := core.NewRuntime(p, plat, core.Options{})
	die(err)

	// Verify the DSR transformation before measuring anything: a
	// malformed rewrite would corrupt the campaign silently.
	verify := analysis.VerifyTransform(p, rt.Program(), analysis.TransformInfo{
		FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym,
		Funcs: rt.Metadata().Funcs,
	})
	if analysis.HasErrors(verify) {
		for _, d := range analysis.Errors(verify) {
			fmt.Fprintln(os.Stderr, "dsrrun:", d)
		}
		fmt.Fprintln(os.Stderr, "dsrrun: DSR transform verification failed; refusing to run the campaign")
		os.Exit(1)
	}

	// The campaign proper runs on the parallel engine: per-run seeds come
	// from the splittable schedule (a pure function of -seed and the run
	// index), every worker assembles its own program and owns a private
	// platform + runtime, and the merge streams execution times into the
	// MBPTA stream in canonical run order — so the analysis input is
	// byte-identical at every -workers value.
	opts := mbpta.DefaultOptions()
	if *runs/opts.BlockSize < 10 {
		opts.BlockSize = *runs / 10
		if opts.BlockSize < 5 {
			opts.BlockSize = 5
		}
	}

	// Live introspection is strictly one-way: the tracer records
	// host-side per-worker timelines and the observer feeds the HTTP
	// view; neither changes what the campaign computes.
	var (
		tracer *telemetry.Tracer
		view   *obs.Campaign
	)
	if *httpAddr != "" {
		tracer = telemetry.NewTracer()
		view = obs.NewCampaign(nil, tracer, opts)
		srv, err := obs.Serve(*httpAddr, view)
		die(err)
		defer srv.Close()
		defer view.Done()
		fmt.Fprintf(os.Stderr, "observability server on http://%s (campaign, events, pprof)\n", srv.Addr())
		view.BeginSeries(p.Name, *runs)
	}

	sched := campaign.NewSchedule(*seed)
	stream := mbpta.NewStream(opts)
	var agg telemetry.AttributionSnapshot
	err = campaign.Execute(campaign.Config{Runs: *runs, Workers: *workers, Tracer: tracer},
		func(w int) (campaign.RunFunc[platform.RunResult], error) {
			wp, err := asm.Assemble(string(src))
			if err != nil {
				return nil, err
			}
			wplat := platform.New(platform.ProximaLEON3())
			if *telem {
				wplat.EnableAttribution()
			}
			wrt, err := core.NewRuntime(wp, wplat, core.Options{})
			if err != nil {
				return nil, err
			}
			wt := tracer.Worker(w)
			wrt.SetTracer(wt)
			return func(i int) (platform.RunResult, error) {
				if _, err := wrt.Reboot(sched.Seed(i)); err != nil {
					return platform.RunResult{}, err
				}
				exec := wt.Begin(telemetry.SpanExecute, -1)
				res, err := wrt.Run()
				wt.End(exec)
				return res, err
			}, nil
		},
		func(i int, res platform.RunResult) error {
			stream.Observe(float64(res.Cycles))
			agg.Add(res.Attribution)
			view.ObserveRun(p.Name, i, float64(res.Cycles))
			if *progress && ((i+1)%50 == 0 || i+1 == *runs) {
				fmt.Fprintf(os.Stderr, "  %s: %d/%d runs\r", p.Name, i+1, *runs)
				if i+1 == *runs {
					fmt.Fprintln(os.Stderr)
				}
			}
			return nil
		})
	die(err)
	view.EndSeries(p.Name)
	if agg.Valid {
		fmt.Print(agg.Render())
		fmt.Println()
	}
	rep, err := stream.Report()
	if rep != nil {
		fmt.Printf("%s under DSR, %d runs: min=%.0f mean=%.0f MOET=%.0f\n",
			p.Name, rep.N, rep.Min, rep.Mean, rep.MOET)
		fmt.Printf("i.i.d.: Ljung-Box p=%.4f, KS p=%.4f\n",
			rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
	}
	die(err)
	fmt.Printf("pWCET @ %.0e = %.0f cycles (+%.2f%% over MOET)\n\n",
		rep.TargetExceedance, rep.PWCET, (rep.PWCET/rep.MOET-1)*100)
	fmt.Print(rvs.RenderCurve(rep, stream.Times(), 72, 18))
}

func dump(p *prog.Program) {
	fmt.Printf(".program %s\n.entry %s\n", p.Name, p.Entry)
	for _, d := range p.Data {
		fmt.Printf(".data %s size=%d align=%d", d.Name, d.Size, d.Align)
		if len(d.Init) > 0 {
			fmt.Printf("  ; %d init words", len(d.Init))
		}
		fmt.Println()
	}
	for _, f := range p.Functions {
		if f.Leaf {
			fmt.Printf("\n.leaf %s\n", f.Name)
		} else {
			fmt.Printf("\n.func %s frame=%d\n", f.Name, f.FrameSize)
		}
		for i := range f.Code {
			fmt.Printf("    %s\n", f.Code[i].String())
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrrun:", err)
		os.Exit(1)
	}
}
