// Command dsrserve is the pWCET-analysis-as-a-service daemon: a
// long-running wrapper around the DSR campaign engine that accepts
// measurement jobs over HTTP, runs them on a bounded priority queue,
// streams live MBPTA progress per job over SSE, and checkpoints
// in-flight campaigns so a crash or restart resumes them with
// byte-identical results.
//
//	dsrserve -addr :8080 -data /var/lib/dsrserve
//
//	curl -d @job.json http://localhost:8080/jobs          submit
//	curl http://localhost:8080/jobs/job-0                 status
//	curl -N http://localhost:8080/jobs/job-0/events       live SSE
//	curl http://localhost:8080/jobs/job-0/report          final report
//	curl -X DELETE http://localhost:8080/jobs/job-0       cancel
//	curl http://localhost:8080/metrics                    Prometheus
//
// The same campaign submitted with `dsrrun -dsr -submit URL prog.s`
// prints a report byte-identical to running `dsrrun -dsr prog.s`
// locally: both paths share the runner in internal/serve.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dsr/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		data      = flag.String("data", "", "persistent data directory (required)")
		executors = flag.Int("executors", 2, "concurrent campaign executors")
		queueCap  = flag.Int("queue-cap", 64, "pending-job queue bound (submissions beyond it get 429)")
		ckptEvery = flag.Int("checkpoint-every", 50, "merged runs between periodic job checkpoints")
		quiet     = flag.Bool("quiet", false, "suppress the service log")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "usage: dsrserve -data DIR [-addr :8080]")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "dsrserve: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	s, err := serve.New(serve.Config{
		DataDir:         *data,
		QueueCap:        *queueCap,
		Executors:       *executors,
		CheckpointEvery: *ckptEvery,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrserve:", err)
		os.Exit(1)
	}
	if err := s.Serve(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "dsrserve:", err)
		os.Exit(1)
	}
	logf("listening on http://%s", s.Addr())
	// Print the bound address on stdout too, so scripts using -addr :0
	// can discover the port.
	fmt.Printf("dsrserve listening on http://%s\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logf("shutting down (checkpointing in-flight jobs)")
	s.Stop()
	logf("bye")
}
