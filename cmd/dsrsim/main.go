// Command dsrsim runs the paper's evaluation (§VI) end to end on the
// simulated PROXIMA LEON3 platform and prints each table and figure:
//
//	dsrsim -platform    platform description (Fig. 1)
//	dsrsim -table1      performance counters, original vs DSR (Table I)
//	dsrsim -fig2        min/avg/max execution times (Fig. 2)
//	dsrsim -fig3        the pWCET curve of the DSR binary (Fig. 3)
//	dsrsim -iid         the i.i.d. verification (Ljung-Box + KS)
//	dsrsim -margin      pWCET vs the MOET+20% industrial margin
//	dsrsim -ablations   the A1-A5 ablation campaigns
//	dsrsim -leakage     E8: side-channel leakage vs timing analysability
//	dsrsim -e9          E9: schedule randomisation x layout randomisation
//	dsrsim -all         everything above
//
// -runs N sets the campaign size (default 1000, as in the paper).
// -workers N shards each campaign across a worker pool (default one
// worker per CPU; 1 forces the sequential path). Campaign results,
// telemetry and progress are byte-identical for every worker count.
//
// Observability:
//
//	-telemetry DIR  record the campaign (metrics, events, per-run cycle
//	                attribution) and export it to DIR as telemetry.jsonl,
//	                telemetry.csv, telemetry.prom and trace.json (Chrome
//	                trace_event, for chrome://tracing / Perfetto), plus
//	                the host-side span timeline as spans.jsonl and
//	                spans-trace.json (per-worker timeline; feed it to
//	                `dsrstat workers` or chrome://tracing)
//	-http ADDR      serve live campaign introspection over HTTP while the
//	                run is in flight (":0" picks a free port; the bound
//	                address is printed to stderr): /metrics, /campaign,
//	                /events (SSE), /healthz, /debug/pprof
//	-progress       print per-run campaign progress to stderr
//
// Neither flag changes campaign results: observation is strictly
// one-way and the determinism suite pins byte-identical output with
// and without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dsr/internal/analysis/wcet"
	"dsr/internal/bus"
	"dsr/internal/experiments"
	"dsr/internal/mbpta"
	"dsr/internal/obs"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/spaceapp"
	"dsr/internal/stats"
	"dsr/internal/telemetry"
)

func main() {
	var (
		runs      = flag.Int("runs", 1000, "measurement runs per configuration")
		seed      = flag.Uint64("seed", 1, "base seed for layout randomisation")
		workers   = flag.Int("workers", 0, "campaign worker-pool size: 0 = one per CPU, 1 = sequential; campaign output is identical for every value")
		all       = flag.Bool("all", false, "run every experiment")
		platFlag  = flag.Bool("platform", false, "print the platform description (Fig. 1)")
		table1    = flag.Bool("table1", false, "Table I: performance counters")
		fig2      = flag.Bool("fig2", false, "Fig. 2: min/avg/max execution times")
		fig3      = flag.Bool("fig3", false, "Fig. 3: pWCET curve")
		iid       = flag.Bool("iid", false, "i.i.d. verification")
		margin    = flag.Bool("margin", false, "pWCET vs industrial margin")
		ablations = flag.Bool("ablations", false, "A1-A5 ablation campaigns")
		leakage   = flag.Bool("leakage", false, "E8: cache side-channel leakage vs timing analysability")
		e9        = flag.Bool("e9", false, "E9: schedule randomisation x layout randomisation grid")
		multicore = flag.Bool("multicore", false, "future-work study: DSR under bus contention (§VII)")
		paths     = flag.Bool("paths", false, "future-work study: worst-path coverage of the processing task (§VII)")
		telemDir  = flag.String("telemetry", "", "record the campaign and export telemetry files to this directory")
		httpAddr  = flag.String("http", "", "serve live observability (metrics, campaign snapshot, SSE, pprof) on this address; \":0\" picks a free port")
		progress  = flag.Bool("progress", false, "print per-run campaign progress to stderr")
	)
	flag.Parse()
	if *all {
		*platFlag, *table1, *fig2, *fig3, *iid, *margin, *ablations, *leakage, *e9, *multicore, *paths =
			true, true, true, true, true, true, true, true, true, true, true
	}
	if !(*platFlag || *table1 || *fig2 || *fig3 || *iid || *margin || *ablations || *leakage || *e9 || *multicore || *paths) {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	cfg.SeedBase = *seed
	cfg.Workers = *workers

	var campaign *telemetry.Campaign
	if *telemDir != "" || *httpAddr != "" {
		campaign = telemetry.NewCampaign(0)
		cfg.Telemetry = campaign
		cfg.Attribution = true
		cfg.MBPTA.Events = campaign.Events
	}
	var tracer *telemetry.Tracer
	if *telemDir != "" || *httpAddr != "" {
		// The span tracer records host wall-clock per-worker timelines;
		// it is deliberately separate from the deterministic campaign
		// telemetry above.
		tracer = telemetry.NewTracer()
		cfg.Tracer = tracer
	}
	var view *obs.Campaign
	if *httpAddr != "" {
		view = obs.NewCampaign(campaign.Registry, tracer, cfg.MBPTA)
		cfg.Observer = view
		srv, err := obs.Serve(*httpAddr, view)
		die(err)
		defer srv.Close()
		defer view.Done()
		fmt.Fprintf(os.Stderr, "observability server on http://%s (metrics, campaign, events, pprof)\n", srv.Addr())
	}
	if *progress {
		cfg.Progress = func(series string, done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "  %s: %d/%d runs\r", series, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	defer func() {
		if *telemDir != "" {
			die(writeTelemetry(*telemDir, campaign, tracer))
		}
	}()

	if *platFlag {
		fmt.Print(platform.New(platform.ProximaLEON3()).Describe())
		fmt.Println()
	}

	var (
		base, dsr *experiments.Series
		err       error
	)
	need := *table1 || *fig2 || *fig3 || *iid || *margin
	if need {
		fmt.Fprintf(os.Stderr, "running %d baseline measurement runs...\n", cfg.Runs)
		base, err = experiments.RunBaseline(cfg)
		die(err)
		fmt.Fprintf(os.Stderr, "running %d DSR measurement runs...\n", cfg.Runs)
		dsr, err = experiments.RunDSR(cfg)
		die(err)
	}

	if *table1 {
		fmt.Print(experiments.FormatTable1(experiments.Table1(base, dsr)))
		fmt.Println()
	}
	if *fig2 {
		fmt.Print(experiments.FormatFigure2(experiments.Figure2(base, dsr)))
		fmt.Println()
	}

	var rep *mbpta.Report
	if *fig3 || *iid || *margin {
		rep, err = experiments.Figure3(dsr, cfg.MBPTA)
		if err != nil {
			// A failed i.i.d. gate is itself a result worth printing.
			if rep != nil {
				fmt.Print(experiments.FormatIID(rep.IID))
			}
			die(err)
		}
	}
	if *iid {
		fmt.Print(experiments.FormatIID(rep.IID))
		// The paper stresses the contrast: the non-randomised platform
		// gives no basis for the representativeness argument. Show its
		// test outcome too.
		if baseIID, err := mbpta.CheckIID(base.Cycles, cfg.MBPTA); err == nil {
			fmt.Printf("\nfor reference, the non-randomised binary:\n")
			fmt.Print(experiments.FormatIID(baseIID))
		}
		fmt.Println()
	}
	if *fig3 {
		fmt.Print(experiments.RenderFigure3(dsr, rep))
		fmt.Println()
	}
	if *margin {
		_, _, moetRef := base.MinMeanMax()
		mc := mbpta.CompareWithMargin(rep, moetRef, cfg.Margin)
		fmt.Print(experiments.FormatMargin(mc, rep.MOET))
		// The analytical counterpart: where the static WCET bounds sit
		// relative to the measured maxima and the EVT extrapolation.
		det, errDet := experiments.StaticWCET(wcet.ModeDet)
		eager, errEager := experiments.StaticWCET(wcet.ModeDSREager)
		if errDet == nil && errEager == nil {
			fmt.Print(experiments.FormatStaticReference(det, eager, moetRef, rep.MOET, rep.PWCET))
		}
		fmt.Println()
	}

	if *ablations {
		runAblations(cfg)
	}
	if *leakage {
		fmt.Fprintf(os.Stderr, "running 3x%d leakage measurement runs (prime+probe / evict+time)...\n", cfg.Runs)
		e8, err := experiments.RunE8(cfg)
		die(err)
		fmt.Print(experiments.FormatE8(e8))
		fmt.Println()
	}
	if *e9 {
		runE9(cfg)
	}
	if *multicore {
		runMulticore(cfg)
	}
	if *paths {
		runPaths(cfg)
	}
}

// runE9 is the schedule-randomisation grid: each cell executes
// certified major frames (11 partition runs per frame, the processing
// task ~5x the control task), so the frame count is capped below the
// -runs campaign size and the MBPTA block size scaled to match.
func runE9(cfg experiments.Config) {
	ecfg := cfg
	if ecfg.Runs > 250 {
		ecfg.Runs = 250
	}
	// 10 block maxima whatever the frame count — enough for the tail fit
	// on a campaign far shorter than the 1000-run E3 reference.
	if ecfg.MBPTA.BlockSize > ecfg.Runs/10 {
		ecfg.MBPTA.BlockSize = ecfg.Runs / 10
	}
	fmt.Fprintf(os.Stderr, "running 4x%d certified major frames (%d partition runs per cell)...\n",
		ecfg.Runs, ecfg.Runs*11)
	rep, err := experiments.RunE9(ecfg)
	die(err)
	fmt.Print(experiments.FormatE9(rep))
	fmt.Println()
	// A failed verdict is itself a result worth printing — but like the
	// i.i.d. gate, it must not exit 0.
	if !rep.Sound || !rep.TimingAnalysable || !rep.InferenceResistant {
		die(fmt.Errorf("E9 verdict failed (see report above)"))
	}
}

// runPaths is the §VII future-work study (i): the processing task's
// execution time depends on the input (how many lenses are lit), so
// MBPTA on nominal inputs bounds only the exercised paths. Measuring at
// the structurally worst path (every lens lit) bounds the path
// dimension too, in the spirit of extended path coverage (EPC).
func runPaths(cfg experiments.Config) {
	pcfg := cfg
	if pcfg.Runs > 60 {
		pcfg.Runs = 60 // the processing task is ~20x the control task
	}
	pcfg.MBPTA.BlockSize = pcfg.Runs / 10
	fmt.Println("FUTURE WORK (§VII): PATH COVERAGE OF THE PROCESSING TASK")
	fmt.Fprintf(os.Stderr, "running processing campaigns (%d runs each)...\n", pcfg.Runs)
	nominal, err := experiments.RunProcessing(pcfg, spaceapp.LitFraction, "nominal inputs (~70% lit)")
	die(err)
	worst, err := experiments.RunProcessing(pcfg, 1.0, "worst path (all lenses lit)")
	die(err)
	for _, s := range []*experiments.Series{nominal, worst} {
		min, mean, max := s.MinMeanMax()
		fmt.Printf("  %-28s min=%-9.0f avg=%-9.0f max=%-9.0f\n", s.Name, min, mean, max)
	}
	_, _, nmax := nominal.MinMeanMax()
	wmin, _, _ := worst.MinMeanMax()
	fmt.Printf("  worst-path min / nominal max = %.2f: measurements at the worst path\n", wmin/nmax)
	fmt.Println("  dominate the nominal campaign, bounding the input-dependent path jitter")
	fmt.Println("  that randomisation alone cannot cover.")
}

// runMulticore is the §VII future-work study: DSR under multicore bus
// interference, with both a randomised-arbiter model (MBPTA-compatible)
// and the worst-case-padding treatment for comparison.
func runMulticore(cfg experiments.Config) {
	mcfg := cfg
	if mcfg.Runs > 300 {
		mcfg.Runs = 300
	}
	if mcfg.Runs < 10*mcfg.MBPTA.BlockSize {
		mcfg.MBPTA.BlockSize = mcfg.Runs / 10
	}
	fmt.Println("FUTURE WORK (§VII): DSR UNDER MULTICORE BUS CONTENTION")
	fmt.Fprintf(os.Stderr, "running contention campaigns...\n")
	quiet, err := experiments.RunDSR(mcfg)
	die(err)
	rnd, err := experiments.RunDSRWithContention(mcfg,
		bus.Contention{Mode: bus.RandomContention, Intensity: 0.3, MaxDelay: 8},
		"Sw Rand + random arb")
	die(err)
	wc, err := experiments.RunDSRWithContention(mcfg,
		bus.Contention{Mode: bus.WorstCaseContention, MaxDelay: 8},
		"Sw Rand + worst-case")
	die(err)
	for _, s := range []*experiments.Series{quiet, rnd, wc} {
		min, mean, max := s.MinMeanMax()
		line := fmt.Sprintf("  %-24s min=%-9.0f avg=%-9.0f max=%-9.0f", s.Name, min, mean, max)
		if rep, err := experiments.Figure3(s, mcfg.MBPTA); err == nil {
			line += fmt.Sprintf(" pWCET@1e-15=%-9.0f (LB p=%.2f KS p=%.2f)",
				rep.PWCET, rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
		} else {
			line += fmt.Sprintf(" MBPTA: %v", err)
		}
		fmt.Println(line)
	}
	fmt.Println("  randomised arbitration stays i.i.d.-analysable; worst-case padding")
	fmt.Println("  upper-bounds it deterministically at a higher cost.")
}

func runAblations(cfg experiments.Config) {
	// Ablations use a reduced campaign: they compare means and spreads,
	// not deep tails.
	acfg := cfg
	if acfg.Runs > 200 {
		acfg.Runs = 200
	}
	fmt.Println("ABLATIONS (A1-A5)")

	summarise := func(s *experiments.Series) string {
		min, mean, max := s.MinMeanMax()
		return fmt.Sprintf("%-22s min=%-9.0f avg=%-9.0f max=%-9.0f stddev=%.0f",
			s.Name, min, mean, max, stats.StdDev(s.Cycles))
	}

	fmt.Fprintf(os.Stderr, "A1: eager vs lazy relocation...\n")
	eager, err := experiments.RunDSR(acfg)
	die(err)
	lazy, err := experiments.RunDSRLazy(acfg)
	die(err)
	fmt.Println("A1 relocation scheme (lazy pays relocation inside the measured window):")
	fmt.Println("  " + summarise(eager))
	fmt.Println("  " + summarise(lazy))

	fmt.Fprintf(os.Stderr, "A2: offset bound L1 vs L2 way size...\n")
	dl1Cfg := platform.ProximaLEON3().DL1
	l1way := dl1Cfg.WaySize()
	small, err := experiments.RunDSRWithOffsetBound(acfg, l1way, "Sw Rand (L1-way bound)")
	die(err)
	fmt.Println("A2 placement offset bound (§III.B.4; L2-way default randomises all levels):")
	fmt.Println("  " + summarise(eager))
	fmt.Println("  " + summarise(small))

	fmt.Fprintf(os.Stderr, "A3: MWC vs LFSR generator...\n")
	lfsr, err := experiments.RunDSRWithPRNG(acfg, func() prng.Source { return prng.NewLFSR(1) }, "Sw Rand (LFSR)")
	die(err)
	fmt.Println("A3 random source (§III.B.3; both must behave equivalently):")
	fmt.Println("  " + summarise(eager))
	fmt.Println("  " + summarise(lfsr))

	fmt.Fprintf(os.Stderr, "A4: hardware randomisation...\n")
	hw, err := experiments.RunHWRand(acfg)
	die(err)
	fmt.Println("A4 hardware time-randomised caches (what DSR substitutes for):")
	fmt.Println("  " + summarise(hw))

	fmt.Fprintf(os.Stderr, "A5: static software randomisation...\n")
	static, err := experiments.RunStatic(acfg)
	die(err)
	fmt.Println("A5 static (TASA-like) randomisation (zero runtime overhead, new binary per run):")
	fmt.Println("  " + summarise(static))

	fmt.Fprintf(os.Stderr, "A7: cache-aware positioning...\n")
	pos, err := experiments.RunPositioned(acfg)
	die(err)
	base, err := experiments.RunBaseline(acfg)
	die(err)
	fmt.Println("A7 cache-aware positioning (ref. [12]; one engineered layout, no randomisation,")
	fmt.Println("   no representativeness argument, re-derive at every integration):")
	fmt.Println("  " + summarise(base))
	fmt.Println("  " + summarise(pos))
}

// writeTelemetry exports the campaign in all four formats: JSONL and CSV
// records, Prometheus text exposition, and a Chrome trace_event JSON
// timeline of the whole campaign. When a span tracer ran, the host-side
// per-worker timeline is exported separately (it is wall-clock data and
// must not contaminate the deterministic dump): spans.jsonl for
// `dsrstat workers`, spans-trace.json for chrome://tracing.
func writeTelemetry(dir string, campaign *telemetry.Campaign, tracer *telemetry.Tracer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type export struct {
		name  string
		write func(f *os.File) error
	}
	dump := campaign.Dump()
	writers := []export{
		{"telemetry.jsonl", func(f *os.File) error { return dump.WriteJSONL(f) }},
		{"telemetry.csv", func(f *os.File) error { return dump.WriteCSV(f) }},
		{"telemetry.prom", func(f *os.File) error { return dump.WritePrometheus(f) }},
		{"trace.json", func(f *os.File) error { return dump.WriteChromeTrace(f, 0) }},
	}
	var spans []telemetry.Span
	if tracer != nil {
		spans = tracer.Spans()
		spanDump := &telemetry.Dump{Spans: spans}
		writers = append(writers,
			export{"spans.jsonl", func(f *os.File) error { return spanDump.WriteJSONL(f) }},
			export{"spans-trace.json", func(f *os.File) error { return telemetry.WriteSpanTrace(f, spans) }},
		)
	}
	for _, w := range writers {
		f, err := os.Create(filepath.Join(dir, w.name))
		if err != nil {
			return err
		}
		if err := w.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "telemetry: %d metrics, %d events, %d spans -> %s\n",
		len(dump.Metrics), len(dump.Events), len(spans), dir)
	return nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrsim:", err)
		os.Exit(1)
	}
}
