// Command dsrwcet runs the static WCET analyzer (internal/analysis/wcet)
// over a program and prints the bound, the loop-bound table, the cache
// classification tallies and every diagnostic.
//
//	dsrwcet prog.s                     bound an assembly source (det layout)
//	dsrwcet -builtin control           bound a built-in program
//	dsrwcet -mode dsr-eager prog.s     bound the DSR-transformed program
//	                                   over all feasible placements
//	dsrwcet -json prog.s               emit the report as JSON
//
// The bound is sound: for every run of the analysed binary on the
// simulated platform, observed cycles <= bound_cycles. The repo's CI
// cross-checks this invariant over randomised campaigns (make
// wcet-check).
//
// Exit status: 0 when a finite bound was produced, 1 when the analysis
// rejected the program (unbounded loop, recursion, unresolved indirect
// call, ...), 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsr/internal/analysis"
	"dsr/internal/analysis/wcet"
	"dsr/internal/asm"
	"dsr/internal/mem"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func main() {
	var (
		builtin    = flag.String("builtin", "", "analyse a built-in program: control | processing")
		mode       = flag.String("mode", "det", "layout model: det | dsr-eager | dsr-lazy")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON")
		contention = flag.Int("contention", 0, "worst-case per-bus-transaction interference delay in cycles")
		reloc      = flag.Int("reloc", -1, "per-function lazy-relocation charge in cycles (dsr-lazy; -1 derives the sound bound from the platform)")
		quiet      = flag.Bool("q", false, "suppress the loop and per-function tables")
	)
	flag.Parse()

	p, lines, err := loadProgram(*builtin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrwcet:", err)
		os.Exit(2)
	}

	cfg := wcet.Config{
		Lines:         lines,
		BusContention: mem.Cycles(*contention),
	}
	if *reloc >= 0 {
		cfg.RelocBound = mem.Cycles(*reloc)
	}
	var m wcet.Mode
	switch *mode {
	case "det":
		m = wcet.ModeDet
	case "dsr-eager":
		m = wcet.ModeDSREager
	case "dsr-lazy":
		m = wcet.ModeDSRLazy
	default:
		fmt.Fprintf(os.Stderr, "dsrwcet: unknown mode %q (want det, dsr-eager or dsr-lazy)\n", *mode)
		os.Exit(2)
	}

	// AnalyzeMode analyses what actually runs: the DSR modes bound the
	// core.Transform output with the canonical dispatch resolver and the
	// runtime's stack-offset bound.
	rep, err := wcet.AnalyzeMode(p, m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrwcet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsrwcet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else {
		printText(rep, *quiet)
	}
	if !rep.Bounded {
		os.Exit(1)
	}
}

func printText(r *wcet.Report, quiet bool) {
	fmt.Printf("%s (entry %s, mode %s)\n", r.Program, r.Entry, r.Mode)
	for _, d := range r.Diags {
		fmt.Println(" ", d)
	}
	if !r.Bounded {
		fmt.Println("UNBOUNDED: the analysis rejected the program (see diagnostics)")
		return
	}
	sat := ""
	if r.Saturated {
		sat = " (SATURATED — bound exceeded the arithmetic ceiling)"
	}
	fmt.Printf("WCET bound: %d cycles%s\n", r.BoundCycles, sat)
	fmt.Printf("  window-safe: %v, ITLB pages: %d, DTLB pages: %d, TLB charge: %d cycles\n",
		r.WindowSafe, r.ITLBPages, r.DTLBPages, r.TLBCycles)
	fmt.Printf("  cache classification: %d always-hit, %d always-miss, %d not-classified\n",
		r.AlwaysHit, r.AlwaysMiss, r.NotClassified)
	if quiet {
		return
	}
	if len(r.Loops) > 0 {
		fmt.Println("  loops:")
		for _, l := range r.Loops {
			loc := fmt.Sprintf("%s+%d", l.Fn, l.Head)
			if l.Line > 0 {
				loc = fmt.Sprintf("%s (line %d)", loc, l.Line)
			}
			fmt.Printf("    %-28s depth %d  bound %-10d %s\n", loc, l.Depth, l.Bound, l.Source)
		}
	}
	if len(r.FuncCycles) > 0 {
		names := make([]string, 0, len(r.FuncCycles))
		for n := range r.FuncCycles {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("  per-function bounds:")
		for _, n := range names {
			fmt.Printf("    %-28s %d cycles\n", n, r.FuncCycles[n])
		}
	}
}

func loadProgram(builtin string) (*prog.Program, analysis.LineResolver, error) {
	switch builtin {
	case "control":
		p, err := spaceapp.BuildControl()
		return p, nil, err
	case "processing":
		p, err := spaceapp.BuildProcessing()
		return p, nil, err
	case "":
		if flag.NArg() != 1 {
			return nil, nil, fmt.Errorf("usage: dsrwcet [flags] prog.s | dsrwcet -builtin control|processing")
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return nil, nil, err
		}
		p, info, err := asm.AssembleWithInfo(string(src))
		if err != nil {
			return nil, nil, err
		}
		return p, info.InstrLine, nil
	default:
		return nil, nil, fmt.Errorf("unknown builtin %q (want control or processing)", builtin)
	}
}
