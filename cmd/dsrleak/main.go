// Command dsrleak runs the static cache side-channel leakage analyzer
// (internal/analysis/leak) over a program and prints the channel
// bounds: the access-based (prime+probe) capacity per cache level, the
// trace-based (hit/miss sequence) capacity, and — for the DSR modes —
// the layout entropy and the residual guessing entropy per observation
// budget.
//
//	dsrleak prog.s                     bound an assembly source (det layout)
//	dsrleak -builtin control           bound a built-in program
//	dsrleak -mode dsr-eager prog.s     bound the DSR-transformed program
//	                                   over all feasible placements
//	dsrleak -json prog.s               emit the report as JSON
//
// The bounds are sound channel-capacity upper bounds: over any campaign
// the number of distinct observations an attacker collects never
// exceeds 2^bound. The repo's CI cross-checks this invariant against
// the simulated prime+probe and evict+time attackers (make leak-check).
//
// Exit status: 0 when finite bounds were produced, 1 when the analysis
// rejected the program, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"dsr/internal/analysis"
	"dsr/internal/analysis/leak"
	"dsr/internal/analysis/wcet"
	"dsr/internal/asm"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func main() {
	var (
		builtin = flag.String("builtin", "", "analyse a built-in program: control | processing")
		mode    = flag.String("mode", "det", "layout model: det | dsr-eager | dsr-lazy")
		jsonOut = flag.Bool("json", false, "emit the report as JSON")
		quiet   = flag.Bool("q", false, "suppress diagnostics in text output")
	)
	flag.Parse()

	p, lines, err := loadProgram(*builtin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrleak:", err)
		os.Exit(2)
	}

	var m wcet.Mode
	switch *mode {
	case "det":
		m = wcet.ModeDet
	case "dsr-eager":
		m = wcet.ModeDSREager
	case "dsr-lazy":
		m = wcet.ModeDSRLazy
	default:
		fmt.Fprintf(os.Stderr, "dsrleak: unknown mode %q (want det, dsr-eager or dsr-lazy)\n", *mode)
		os.Exit(2)
	}

	rep, err := leak.AnalyzeMode(p, m, leak.Config{Lines: lines})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrleak:", err)
		os.Exit(2)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsrleak:", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else {
		if *quiet {
			rep.Diags = nil
		}
		fmt.Print(rep.Format())
	}
	if !rep.Bounded {
		os.Exit(1)
	}
}

func loadProgram(builtin string) (*prog.Program, analysis.LineResolver, error) {
	switch builtin {
	case "control":
		p, err := spaceapp.BuildControl()
		return p, nil, err
	case "processing":
		p, err := spaceapp.BuildProcessing()
		return p, nil, err
	case "":
		if flag.NArg() != 1 {
			return nil, nil, fmt.Errorf("usage: dsrleak [flags] prog.s | dsrleak -builtin control|processing")
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return nil, nil, err
		}
		p, info, err := asm.AssembleWithInfo(string(src))
		if err != nil {
			return nil, nil, err
		}
		return p, info.InstrLine, nil
	default:
		return nil, nil, fmt.Errorf("unknown builtin %q (want control or processing)", builtin)
	}
}
