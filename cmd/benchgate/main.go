// Command benchgate is the perf-regression harness behind
// `make bench-baseline` and `make bench-check`.
//
// Record mode runs a fixed suite of component microbenchmarks (cache,
// functional memory, TLB, fetch loop) plus the campaign benchmarks at
// pinned iteration counts, and writes the parsed results to a JSON
// baseline file:
//
//	go run ./cmd/benchgate -record BENCH_BASELINE.json
//
// Check mode re-runs the same suite and fails (non-zero exit) when any
// benchmark regressed beyond the tolerance — slower ns/op, or lower
// throughput (runs/s, instrs/s):
//
//	go run ./cmd/benchgate -check BENCH_BASELINE.json -tolerance 0.15
//
// Iteration counts are fixed (-benchtime Nx) so a run measures the same
// work every time; the generous default tolerance absorbs scheduler
// noise, making the check usable as a CI smoke.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation with pinned iterations.
type suite struct {
	Pkg       string
	Bench     string // -bench regex
	BenchTime string // -benchtime, always a fixed count ("Nx")
}

// suites is the gated benchmark set. Campaign benchmarks measure
// end-to-end runs/s; the component suites measure the per-access cost
// of each hot-path structure.
var suites = []suite{
	{Pkg: ".", Bench: "^BenchmarkCampaignWorkers(1|8)$", BenchTime: "1x"},
	{Pkg: "./internal/cache", Bench: "^Benchmark", BenchTime: "2000000x"},
	{Pkg: "./internal/tlb", Bench: "^Benchmark", BenchTime: "1000000x"},
	{Pkg: "./internal/cpu", Bench: "^BenchmarkMemory", BenchTime: "2000000x"},
	{Pkg: "./internal/cpu", Bench: "^BenchmarkFetchLoop", BenchTime: "100x"},
	{Pkg: "./internal/platform", Bench: "^BenchmarkPlatformFork$", BenchTime: "200x"},
	{Pkg: "./internal/core", Bench: "^BenchmarkReboot$", BenchTime: "500x"},
	{Pkg: "./internal/cpu", Bench: "^BenchmarkChargeDisabled", BenchTime: "20000000x"},
	{Pkg: "./internal/analysis/leak", Bench: "^BenchmarkLeakAnalyze$", BenchTime: "100x"},
	{Pkg: "./internal/serve", Bench: "^BenchmarkServeSubmitLatency$", BenchTime: "30x"},
}

// scalingEntry is the synthetic baseline key recording the campaign's
// parallel speedup (Workers1 wall time / Workers8 wall time). It has no
// ns/op of its own (NsPerOp stays 0, which the ns/op gate skips); the
// gated quantity is its "speedup" metric, checked as an absolute
// threshold rather than against the baseline because the achievable
// ratio depends on the runner, not on the code under test.
const scalingEntry = "CampaignScalingWorkers8v1"

// Scaling gate thresholds: with the copy-on-write platform forks in
// place, campaign workers share no per-run construction, so on a
// machine with at least scalingGateCores cores the 8-worker campaign
// must beat the sequential one by at least minSpeedup — anything less
// means a serialisation bug crept back in. On smaller runners (CI
// containers are often 1–2 vCPUs) the ratio measures the machine, not
// the code, so the gate degrades to the advisory warning.
const (
	scalingGateCores = 8
	minSpeedup       = 4.0
)

// result is one benchmark's parsed output: ns/op plus named metrics.
type result struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// throughputMetrics are compared as higher-is-better; all other custom
// metrics are informational (recorded but not gated) because they are
// model outputs (cycles, ratios), not performance.
var throughputMetrics = map[string]bool{
	"runs/s":   true,
	"instrs/s": true,
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

// runSuites executes every suite and returns name → result.
func runSuites() (map[string]result, error) {
	out := map[string]result{}
	for _, s := range suites {
		args := []string{"test", "-run", "^$", "-bench", s.Bench,
			"-benchtime", s.BenchTime, "-count", "1", s.Pkg}
		fmt.Fprintf(os.Stderr, "benchgate: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test %s: %w", s.Pkg, err)
		}
		sc := bufio.NewScanner(strings.NewReader(string(raw)))
		for sc.Scan() {
			line := sc.Text()
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			name := m[1]
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			r := result{NsPerOp: ns, Metrics: map[string]float64{}}
			// Trailing "<value> <unit>" metric pairs.
			fields := strings.Fields(m[4])
			for i := 0; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				r.Metrics[fields[i+1]] = v
			}
			out[name] = r
			fmt.Printf("  %-40s %14.1f ns/op", name, ns)
			for _, k := range sortedKeys(r.Metrics) {
				fmt.Printf("  %s=%.4g", k, r.Metrics[k])
			}
			fmt.Println()
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed")
	}
	return out, nil
}

// reportScaling prints the campaign's parallel speedup explicitly —
// Workers8 wall time vs Workers1 wall time for the same fixed work —
// and records it into the result set under scalingEntry together with
// the runner's core count, so the baseline JSON documents both the
// ratio and the machine it was measured on. The per-benchmark ns/op
// gate cannot express this ratio (each benchmark is compared only
// against its own baseline), and runs/s of the Workers8 benchmark alone
// reads as absolute throughput, which is misleading about scaling.
//
// The returned failure is non-empty when the hard scaling gate trips:
// on a runner with scalingGateCores or more cores, speedup below
// minSpeedup fails the check. Below that core count the ratio is
// machine-bound, so poor scaling only warns — `dsrstat workers` on a
// span timeline names the bottleneck.
func reportScaling(got map[string]result) (failure string) {
	w1, ok1 := got["BenchmarkCampaignWorkers1"]
	w8, ok8 := got["BenchmarkCampaignWorkers8"]
	if !ok1 || !ok8 || w8.NsPerOp <= 0 {
		return ""
	}
	speedup := w1.NsPerOp / w8.NsPerOp
	cores := runtime.NumCPU()
	got[scalingEntry] = result{Metrics: map[string]float64{
		"speedup": speedup,
		"cores":   float64(cores),
	}}
	fmt.Printf("benchgate: campaign scaling: Workers8 = %.2fx Workers1 (%d cores)\n", speedup, cores)
	if cores >= scalingGateCores && speedup < minSpeedup {
		return fmt.Sprintf("%s: speedup %.2fx below required %.1fx on %d cores; "+
			"run `dsrsim -telemetry DIR` and `dsrstat workers DIR/spans.jsonl` to find the bottleneck",
			scalingEntry, speedup, minSpeedup, cores)
	}
	if speedup < 2 {
		fmt.Fprintf(os.Stderr, "benchgate: WARNING: campaign speedup %.2fx below 2x on 8 workers "+
			"(%d cores — scaling gate requires >= %d); "+
			"run `dsrsim -telemetry DIR` and `dsrstat workers DIR/spans.jsonl` to find the bottleneck\n",
			speedup, cores, scalingGateCores)
	}
	return ""
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// check compares got against base, returning the regression report.
func check(base, got map[string]result, tol float64) []string {
	var fails []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.1f%% > %.0f%%)",
				name, g.NsPerOp, b.NsPerOp, (g.NsPerOp/b.NsPerOp-1)*100, tol*100))
		}
		for metric, bv := range b.Metrics {
			if !throughputMetrics[metric] || bv <= 0 {
				continue
			}
			gv, ok := g.Metrics[metric]
			if !ok {
				fails = append(fails, fmt.Sprintf("%s: metric %s missing", name, metric))
				continue
			}
			if gv < bv*(1-tol) {
				fails = append(fails, fmt.Sprintf("%s: %s %.1f vs baseline %.1f (-%.1f%% > %.0f%%)",
					name, metric, gv, bv, (1-gv/bv)*100, tol*100))
			}
		}
	}
	return fails
}

func main() {
	recordPath := flag.String("record", "", "run the suite and write the baseline JSON to this path")
	checkPath := flag.String("check", "", "run the suite and compare against this baseline JSON")
	tol := flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	flag.Parse()

	switch {
	case (*recordPath == "") == (*checkPath == ""):
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -record or -check is required")
		os.Exit(2)

	case *recordPath != "":
		got, err := runSuites()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		if f := reportScaling(got); f != "" {
			// Record mode still writes the baseline — the operator asked
			// for a snapshot of this machine — but the gate result is not
			// silently swallowed.
			fmt.Fprintln(os.Stderr, "benchgate: WARNING:", f)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*recordPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: recorded %d benchmarks to %s\n", len(got), *recordPath)

	default:
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: read baseline:", err)
			os.Exit(1)
		}
		var base map[string]result
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: parse baseline:", err)
			os.Exit(1)
		}
		got, err := runSuites()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		scalingFail := reportScaling(got)
		fails := check(base, got, *tol)
		if scalingFail != "" {
			fails = append(fails, scalingFail)
		}
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) beyond %.0f%%:\n", len(fails), *tol*100)
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "  "+f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n", len(base), *tol*100)
	}
}
