// Command pwcet is the MBPTA analysis tool (the RVS analysis stage of
// §V-VI): it reads execution times — either a binary timing trace
// produced by traceconv -gen, or a text file with one execution time per
// line — runs the i.i.d. gate, fits the EVT model, and prints the pWCET
// report and curve.
//
//	pwcet -trace trace.bin
//	pwcet -times times.txt -block 50 -target 1e-15
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dsr/internal/mbpta"
	"dsr/internal/rvs"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "binary timing trace (rvs format)")
		timesFile = flag.String("times", "", "text file with one execution time per line ('-' for stdin)")
		enter     = flag.Int("enter", int(rvs.UoAEnter), "UoA enter instrumentation point id")
		exit      = flag.Int("exit", int(rvs.UoAExit), "UoA exit instrumentation point id")
		block     = flag.Int("block", 50, "EVT block-maxima size")
		target    = flag.Float64("target", 1e-15, "target exceedance probability")
	)
	flag.Parse()

	times, err := loadTimes(*traceFile, *timesFile, int32(*enter), int32(*exit))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", err)
		os.Exit(1)
	}
	if len(times) == 0 {
		fmt.Fprintln(os.Stderr, "pwcet: no execution times found")
		os.Exit(1)
	}

	opts := mbpta.DefaultOptions()
	opts.BlockSize = *block
	opts.TargetExceedance = *target
	// The Gumbel fit needs at least 10 block maxima; shrink the block for
	// small samples rather than refusing outright.
	if len(times)/opts.BlockSize < 10 {
		adj := len(times) / 10
		if adj < 5 {
			adj = 5
		}
		fmt.Fprintf(os.Stderr, "pwcet: only %d runs; reducing block size %d -> %d\n",
			len(times), opts.BlockSize, adj)
		opts.BlockSize = adj
	}
	rep, analyseErr := mbpta.Analyse(times, opts)
	name := *traceFile
	if name == "" {
		name = *timesFile
	}
	if err := rvs.WriteReport(os.Stdout, name, rep, times); err != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", err)
		os.Exit(1)
	}
	if analyseErr != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", analyseErr)
		os.Exit(1)
	}
}

func loadTimes(traceFile, timesFile string, enter, exit int32) ([]float64, error) {
	switch {
	case traceFile != "" && timesFile != "":
		return nil, fmt.Errorf("give either -trace or -times, not both")
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		trace, err := rvs.Decode(f)
		if err != nil {
			return nil, err
		}
		return rvs.ToFloats(rvs.Durations(trace, enter, exit)), nil
	case timesFile != "":
		var r io.Reader = os.Stdin
		if timesFile != "-" {
			f, err := os.Open(timesFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		return readTimes(r)
	default:
		return nil, fmt.Errorf("give -trace FILE or -times FILE")
	}
}

func readTimes(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad execution time %q: %v", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
