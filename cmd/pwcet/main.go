// Command pwcet is the MBPTA analysis tool (the RVS analysis stage of
// §V-VI): it reads execution times — either a binary timing trace
// produced by traceconv -gen, or a text file with one execution time per
// line — runs the i.i.d. gate, fits the EVT model, and prints the pWCET
// report and curve.
//
//	pwcet -trace trace.bin
//	pwcet -times times.txt -block 50 -target 1e-15
//	pwcet -times times.txt -static control:dsr-eager
//	pwcet -times times.txt -static 6054473
//
// -static prints a reference line comparing the measurement-based pWCET
// estimate against the static WCET bound (internal/analysis/wcet). The
// argument is either an absolute cycle bound or app:mode, where app is
// control or processing and mode is det, dsr-eager or dsr-lazy.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dsr/internal/analysis/wcet"
	"dsr/internal/mbpta"
	"dsr/internal/prog"
	"dsr/internal/rvs"
	"dsr/internal/spaceapp"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "binary timing trace (rvs format)")
		timesFile = flag.String("times", "", "text file with one execution time per line ('-' for stdin)")
		enter     = flag.Int("enter", int(rvs.UoAEnter), "UoA enter instrumentation point id")
		exit      = flag.Int("exit", int(rvs.UoAExit), "UoA exit instrumentation point id")
		block     = flag.Int("block", 50, "EVT block-maxima size")
		target    = flag.Float64("target", 1e-15, "target exceedance probability")
		static    = flag.String("static", "", "static WCET reference: a cycle bound, or app:mode (control|processing : det|dsr-eager|dsr-lazy)")
	)
	flag.Parse()

	staticBound, staticLabel, err := resolveStatic(*static)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", err)
		os.Exit(1)
	}

	times, err := loadTimes(*traceFile, *timesFile, int32(*enter), int32(*exit))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", err)
		os.Exit(1)
	}
	if len(times) == 0 {
		fmt.Fprintln(os.Stderr, "pwcet: no execution times found")
		os.Exit(1)
	}

	opts := mbpta.DefaultOptions()
	opts.BlockSize = *block
	opts.TargetExceedance = *target
	// The Gumbel fit needs at least 10 block maxima; shrink the block for
	// small samples rather than refusing outright.
	if len(times)/opts.BlockSize < 10 {
		adj := len(times) / 10
		if adj < 5 {
			adj = 5
		}
		fmt.Fprintf(os.Stderr, "pwcet: only %d runs; reducing block size %d -> %d\n",
			len(times), opts.BlockSize, adj)
		opts.BlockSize = adj
	}
	rep, analyseErr := mbpta.Analyse(times, opts)
	name := *traceFile
	if name == "" {
		name = *timesFile
	}
	if err := rvs.WriteReport(os.Stdout, name, rep, times); err != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", err)
		os.Exit(1)
	}
	if staticBound > 0 {
		printStatic(rep, staticBound, staticLabel)
	}
	if analyseErr != nil {
		fmt.Fprintln(os.Stderr, "pwcet:", analyseErr)
		os.Exit(1)
	}
}

// resolveStatic turns the -static argument into a cycle bound: either a
// literal number, or app:mode analysed on the spot with the same
// wiring the soundness gate uses (wcet.AnalyzeMode).
func resolveStatic(spec string) (float64, string, error) {
	if spec == "" {
		return 0, "", nil
	}
	if v, err := strconv.ParseFloat(spec, 64); err == nil {
		if v <= 0 {
			return 0, "", fmt.Errorf("-static bound must be positive, got %v", v)
		}
		return v, "given bound", nil
	}
	app, modeName, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, "", fmt.Errorf("-static wants a cycle count or app:mode, got %q", spec)
	}
	var (
		p   *prog.Program
		err error
	)
	switch app {
	case "control":
		p, err = spaceapp.BuildControl()
	case "processing":
		p, err = spaceapp.BuildProcessing()
	default:
		return 0, "", fmt.Errorf("-static app %q: want control or processing", app)
	}
	if err != nil {
		return 0, "", err
	}
	var mode wcet.Mode
	switch modeName {
	case "det":
		mode = wcet.ModeDet
	case "dsr-eager":
		mode = wcet.ModeDSREager
	case "dsr-lazy":
		mode = wcet.ModeDSRLazy
	default:
		return 0, "", fmt.Errorf("-static mode %q: want det, dsr-eager or dsr-lazy", modeName)
	}
	rep, err := wcet.AnalyzeMode(p, mode, wcet.Config{})
	if err != nil {
		return 0, "", err
	}
	if !rep.Bounded {
		return 0, "", fmt.Errorf("static analysis refused %s under %s", app, modeName)
	}
	return float64(rep.BoundCycles), spec, nil
}

// printStatic is the static-vs-probabilistic reference line: where the
// analytical bound sits relative to the MOET and the pWCET estimate.
func printStatic(rep *mbpta.Report, bound float64, label string) {
	fmt.Printf("static WCET reference (%s): %.0f cycles\n", label, bound)
	if rep == nil {
		return
	}
	if rep.MOET > 0 {
		fmt.Printf("  MOET %.0f  -> static/MOET x%.2f\n", rep.MOET, bound/rep.MOET)
	}
	if rep.PWCET > 0 {
		verdict := "pWCET exceeds the static bound — EVT extrapolation is pessimistic there"
		if rep.PWCET <= bound {
			verdict = "pWCET is below the static bound, as expected for a sound bound"
		}
		fmt.Printf("  pWCET %.0f -> static/pWCET x%.2f (%s)\n", rep.PWCET, bound/rep.PWCET, verdict)
	}
}

func loadTimes(traceFile, timesFile string, enter, exit int32) ([]float64, error) {
	switch {
	case traceFile != "" && timesFile != "":
		return nil, fmt.Errorf("give either -trace or -times, not both")
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		trace, err := rvs.Decode(f)
		if err != nil {
			return nil, err
		}
		return rvs.ToFloats(rvs.Durations(trace, enter, exit)), nil
	case timesFile != "":
		var r io.Reader = os.Stdin
		if timesFile != "-" {
			f, err := os.Open(timesFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		return readTimes(r)
	default:
		return nil, fmt.Errorf("give -trace FILE or -times FILE")
	}
}

func readTimes(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad execution time %q: %v", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
