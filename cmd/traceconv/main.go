// Command traceconv works with RVS-style binary timing traces (§V): it
// converts the binary format the target dumps into host-side CSV, and it
// can generate a demonstration trace by running the space case study
// under DSR.
//
//	traceconv -gen 200 -o trace.bin     generate a 200-run DSR trace
//	traceconv trace.bin                 convert binary trace to CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"dsr/internal/core"
	"dsr/internal/cpu"
	"dsr/internal/platform"
	"dsr/internal/rvs"
	"dsr/internal/spaceapp"
)

func main() {
	var (
		gen  = flag.Int("gen", 0, "generate a trace from N DSR runs of the control task")
		out  = flag.String("o", "trace.bin", "output file for -gen")
		seed = flag.Uint64("seed", 1, "base seed for -gen")
	)
	flag.Parse()

	if *gen > 0 {
		if err := generate(*gen, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "traceconv:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d-run trace to %s\n", *gen, *out)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceconv [-gen N -o FILE] | traceconv TRACE.bin")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
	defer f.Close()
	trace, err := rvs.Decode(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
	if err := rvs.WriteCSV(os.Stdout, trace); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

func generate(n int, seed uint64, path string) error {
	p, err := spaceapp.BuildControl()
	if err != nil {
		return err
	}
	plat := platform.New(platform.ProximaLEON3())
	rt, err := core.NewRuntime(p, plat, core.Options{})
	if err != nil {
		return err
	}
	var trace []cpu.TracePoint
	for i := 0; i < n; i++ {
		if _, err := rt.Reboot(seed + uint64(i)); err != nil {
			return err
		}
		in := spaceapp.GenControlInput(9000 + uint64(i))
		if err := spaceapp.ApplyControlInput(plat.Mem, rt.Image(), in); err != nil {
			return err
		}
		res, err := rt.Run()
		if err != nil {
			return err
		}
		trace = append(trace, res.Trace...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rvs.Encode(f, trace)
}
