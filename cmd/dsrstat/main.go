// Command dsrstat summarises and converts the telemetry dumps written
// by `dsrsim -telemetry DIR` (and by anything else that uses
// internal/telemetry's exporters).
//
//	dsrstat summary  FILE            print metric/event/track summary
//	dsrstat convert  -to FMT FILE    re-encode as jsonl, csv or prom
//	dsrstat trace    FILE            render a Chrome trace_event JSON
//	dsrstat workers  FILE            per-worker utilization report from
//	                                 a span timeline (spans.jsonl) —
//	                                 busy/idle split, phase breakdown,
//	                                 claim latency, and the scaling
//	                                 bottleneck the timeline implies;
//	                                 -assert-not CLASS,... exits 1 when
//	                                 the dominant bottleneck class is
//	                                 one of the banned tokens (CI gate)
//	dsrstat validate FILE            round-trip + trace schema checks
//	                                 (+ span schema when spans present)
//
// The input format is inferred from the file extension (.jsonl, .csv,
// .prom / .txt) or forced with -from. CSV and Prometheus inputs carry
// metrics only; summaries and traces over them have no events.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dsr/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "workers":
		err = cmdWorkers(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "dsrstat: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsrstat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  dsrstat summary  [-from FMT] FILE
  dsrstat convert  [-from FMT] -to jsonl|csv|prom FILE
  dsrstat trace    [-from FMT] [-cycles-per-us N] FILE
  dsrstat workers  [-trace FILE.json] SPANS.jsonl
  dsrstat validate [-from FMT] FILE
formats: jsonl (metrics+events+spans), csv, prom (metrics only)
`)
}

// detectFormat maps a file extension to an input format name.
func detectFormat(path string) (string, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson", ".json":
		return "jsonl", nil
	case ".csv":
		return "csv", nil
	case ".prom", ".txt", ".metrics":
		return "prom", nil
	}
	return "", fmt.Errorf("cannot infer format of %q; use -from jsonl|csv|prom", path)
}

// load reads a dump in the given (or inferred) format.
func load(path, from string) (*telemetry.Dump, string, error) {
	if from == "" {
		var err error
		if from, err = detectFormat(path); err != nil {
			return nil, "", err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var d *telemetry.Dump
	switch from {
	case "jsonl":
		d, err = telemetry.ReadJSONL(f)
	case "csv":
		d, err = telemetry.ReadCSV(f)
	case "prom":
		d, err = telemetry.ReadPrometheus(f)
	default:
		return nil, "", fmt.Errorf("unknown input format %q (want jsonl, csv or prom)", from)
	}
	return d, from, err
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	from := fs.String("from", "", "input format (jsonl, csv, prom); default: by extension")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("summary: want exactly one FILE")
	}
	d, format, err := load(fs.Arg(0), *from)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s): %d metrics, %d events\n", fs.Arg(0), format, len(d.Metrics), len(d.Events))

	// Metrics, grouped by kind then name.
	byKind := map[telemetry.MetricKind]int{}
	for _, m := range d.Metrics {
		byKind[m.Kind]++
	}
	if len(d.Metrics) > 0 {
		fmt.Printf("\nmetrics: %d counters, %d gauges, %d histograms\n",
			byKind[telemetry.KindCounter], byKind[telemetry.KindGauge], byKind[telemetry.KindHistogram])
		ms := append([]telemetry.Metric(nil), d.Metrics...)
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].Name != ms[j].Name {
				return ms[i].Name < ms[j].Name
			}
			return ms[i].Labels.String() < ms[j].Labels.String()
		})
		for _, m := range ms {
			label := m.Name
			if ls := m.Labels.String(); ls != "" {
				label += "{" + ls + "}"
			}
			switch m.Kind {
			case telemetry.KindHistogram:
				mean := 0.0
				if m.Count > 0 {
					mean = m.Sum / float64(m.Count)
				}
				fmt.Printf("  %-52s histogram n=%d sum=%.0f mean=%.1f\n", label, m.Count, m.Sum, mean)
			default:
				fmt.Printf("  %-52s %s %.6g\n", label, m.Kind, m.Value)
			}
		}
	}

	// Events, grouped by track and kind.
	if len(d.Events) > 0 {
		type tk struct{ track, kind string }
		counts := map[tk]int{}
		var order []tk
		for _, e := range d.Events {
			k := tk{e.Track, e.Kind}
			if counts[k] == 0 {
				order = append(order, k)
			}
			counts[k]++
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].track != order[j].track {
				return order[i].track < order[j].track
			}
			return order[i].kind < order[j].kind
		})
		fmt.Printf("\nevents by track/kind:\n")
		for _, k := range order {
			fmt.Printf("  %-16s %-24s %d\n", k.track, k.kind, counts[k])
		}
		first, last := d.Events[0].TS, d.Events[0].TS
		for _, e := range d.Events {
			if e.TS < first {
				first = e.TS
			}
			if e.TS > last {
				last = e.TS
			}
		}
		fmt.Printf("time span: %d .. %d cycles (%.3f ms at %g cycles/us)\n",
			first, last, float64(last-first)/telemetry.DefaultCyclesPerMicro/1000,
			telemetry.DefaultCyclesPerMicro)
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	from := fs.String("from", "", "input format (jsonl, csv, prom); default: by extension")
	to := fs.String("to", "", "output format: jsonl, csv or prom")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("convert: want exactly one FILE")
	}
	d, _, err := load(fs.Arg(0), *from)
	if err != nil {
		return err
	}
	switch *to {
	case "jsonl":
		return d.WriteJSONL(os.Stdout)
	case "csv":
		return d.WriteCSV(os.Stdout)
	case "prom":
		return d.WritePrometheus(os.Stdout)
	}
	return fmt.Errorf("convert: -to must be jsonl, csv or prom (got %q)", *to)
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	from := fs.String("from", "", "input format (jsonl, csv, prom); default: by extension")
	cpu := fs.Float64("cycles-per-us", 0, "cycles per microsecond (0: the 80 MHz default)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: want exactly one FILE")
	}
	d, _, err := load(fs.Arg(0), *from)
	if err != nil {
		return err
	}
	if len(d.Events) == 0 {
		return fmt.Errorf("trace: %s has no events (metrics-only format?)", fs.Arg(0))
	}
	return d.WriteChromeTrace(os.Stdout, *cpu)
}

// cmdWorkers renders the per-worker utilization report from a span
// timeline recorded with `dsrsim -telemetry` (spans.jsonl): total and
// per-worker busy/idle split, boot/reloc/execute phase breakdown,
// claim latency, and the dominant scaling bottleneck.
func cmdWorkers(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	from := fs.String("from", "", "input format (only jsonl carries spans); default: by extension")
	traceOut := fs.String("trace", "", "also write the timeline as Chrome trace_event JSON to this file")
	assertNot := fs.String("assert-not", "", "comma-separated bottleneck classes that must NOT be dominant (exit 1 if one is); e.g. merge-serialisation,platform-construction")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("workers: want exactly one FILE")
	}
	d, _, err := load(fs.Arg(0), *from)
	if err != nil {
		return err
	}
	if len(d.Spans) == 0 {
		return fmt.Errorf("workers: %s carries no spans (want the spans.jsonl written by dsrsim -telemetry)", fs.Arg(0))
	}
	rep, err := telemetry.AnalyzeSpans(d.Spans)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSpanTrace(f, d.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline -> %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *assertNot != "" {
		class := rep.BottleneckClass()
		for _, banned := range strings.Split(*assertNot, ",") {
			if class == strings.TrimSpace(banned) {
				return fmt.Errorf("workers: dominant bottleneck class is %q, which the gate forbids (%s)",
					class, *assertNot)
			}
		}
		fmt.Printf("bottleneck gate ok: dominant class %q not in {%s}\n", class, *assertNot)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	from := fs.String("from", "", "input format (jsonl, csv, prom); default: by extension")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("validate: want exactly one FILE")
	}
	d, format, err := load(fs.Arg(0), *from)
	if err != nil {
		return err
	}

	// Round-trip every metric through each exporter and require
	// order-insensitive equality.
	checks := []struct {
		name  string
		write func(*telemetry.Dump, io.Writer) error
		read  func(io.Reader) (*telemetry.Dump, error)
	}{
		{"jsonl", (*telemetry.Dump).WriteJSONL, telemetry.ReadJSONL},
		{"csv", (*telemetry.Dump).WriteCSV, telemetry.ReadCSV},
		{"prom", (*telemetry.Dump).WritePrometheus, telemetry.ReadPrometheus},
	}
	for _, c := range checks {
		var buf bytes.Buffer
		if err := c.write(d, &buf); err != nil {
			return fmt.Errorf("validate: %s encode: %w", c.name, err)
		}
		back, err := c.read(&buf)
		if err != nil {
			return fmt.Errorf("validate: %s decode: %w", c.name, err)
		}
		if !telemetry.MetricsEqual(d.Metrics, back.Metrics) {
			return fmt.Errorf("validate: %s round-trip changed the metrics", c.name)
		}
		fmt.Printf("%-5s round-trip ok (%d metrics)\n", c.name, len(back.Metrics))
	}

	// Chrome trace schema check over the events.
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf, 0); err != nil {
		return fmt.Errorf("validate: trace encode: %w", err)
	}
	spans, err := telemetry.ValidateChromeTrace(&buf)
	if err != nil {
		return fmt.Errorf("validate: %w", err)
	}
	fmt.Printf("trace schema ok (%d events, %d span pairs)\n", len(d.Events), spans)

	// Host-side span timeline, when present: schema (kinds, bounds,
	// per-worker nesting) plus the Chrome export of the timeline.
	if len(d.Spans) > 0 {
		n, err := telemetry.ValidateSpans(d.Spans)
		if err != nil {
			return fmt.Errorf("validate: spans: %w", err)
		}
		buf.Reset()
		if err := telemetry.WriteSpanTrace(&buf, d.Spans); err != nil {
			return fmt.Errorf("validate: span trace encode: %w", err)
		}
		if _, err := telemetry.ValidateChromeTrace(&buf); err != nil {
			return fmt.Errorf("validate: span trace: %w", err)
		}
		fmt.Printf("span schema ok (%d spans)\n", n)
	}
	fmt.Printf("%s (%s): valid\n", fs.Arg(0), format)
	return nil
}
