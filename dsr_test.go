package dsr_test

import (
	"strings"
	"testing"

	"dsr"
	"dsr/internal/isa"
)

// smallProgram builds a tiny workload through the public API.
func smallProgram(t *testing.T) *dsr.Program {
	t.Helper()
	leaf := dsr.NewLeaf("twice").
		AddI(isa.O0, isa.O0, 0).
		Add(isa.O0, isa.O0, isa.O0).
		RetLeaf().
		MustBuild()
	main := dsr.NewFunc("main", dsr.MinFrame).
		Prologue().
		MovI(isa.O0, 21).
		Call("twice").
		Halt().
		MustBuild()
	p := &dsr.Program{Name: "quick", Entry: "main"}
	for _, f := range []*dsr.Function{main, leaf} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPublicWorkflowBaseline(t *testing.T) {
	p := smallProgram(t)
	img, err := dsr.LoadSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	plat := dsr.NewPlatform()
	plat.LoadImage(img)
	res, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitValue != 42 {
		t.Errorf("exit=%d, want 42", res.ExitValue)
	}
}

func TestPublicWorkflowDSRAndAnalysis(t *testing.T) {
	p := smallProgram(t)
	plat := dsr.NewPlatform()
	rt, err := dsr.NewRuntime(p, plat, dsr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for i := 0; i < 200; i++ {
		if _, err := rt.Reboot(uint64(i) + 1); err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != 42 {
			t.Fatalf("run %d: exit=%d", i, res.ExitValue)
		}
		times = append(times, float64(res.Cycles))
	}
	opts := dsr.DefaultAnalysisOptions()
	opts.BlockSize = 20
	rep, err := dsr.AnalyseWith(times, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PWCET <= rep.MOET {
		t.Error("pWCET must upper-bound MOET")
	}
	mc := dsr.CompareWithMargin(rep, rep.MOET, 0.20)
	if mc.Budget <= rep.MOET {
		t.Error("margin budget wrong")
	}
	if !strings.Contains(dsr.RenderCurve(rep, times), "pWCET") {
		t.Error("curve rendering")
	}
}

func TestPublicCaseStudyBuilders(t *testing.T) {
	ctrl, err := dsr.BuildControlTask()
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Entry != "ctrl_main" || len(ctrl.Functions) < 10 {
		t.Error("control task shape")
	}
	proc, err := dsr.BuildProcessingTask()
	if err != nil {
		t.Fatal(err)
	}
	if proc.Entry != "proc_main" {
		t.Error("processing task shape")
	}
}

func TestPublicHWRandPlatform(t *testing.T) {
	p := smallProgram(t)
	img, err := dsr.LoadSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	plat := dsr.NewHWRandPlatform()
	plat.LoadImage(img)
	plat.ReseedCaches(7)
	res, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitValue != 42 {
		t.Error("hw-rand platform broke semantics")
	}
}

func TestPublicStaticBuild(t *testing.T) {
	p := smallProgram(t)
	img, err := dsr.StaticBuild(p, 32*1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	plat := dsr.NewPlatform()
	plat.LoadImage(img)
	res, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitValue != 42 {
		t.Error("static build broke semantics")
	}
}
